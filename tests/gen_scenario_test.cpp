// The generator's determinism contract: scenarios are pure functions of
// (family, seed) — byte-identical text and identical task-graph
// fingerprints across repeated invocations and concurrent generation on
// 1/2/8 threads — and distinct seeds yield distinct graphs (the
// seed-epsilon guarantee), across every family.
#include "gen/scenario.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "gen/rng.hpp"
#include "io/text_format.hpp"
#include "taskgraph/fingerprint.hpp"

namespace fppn::gen {
namespace {

TEST(GenRng, SplitMix64KnownAnswers) {
  // The generator's determinism rests on this exact stream; pin it to the
  // published SplitMix64 vectors for seed 1234567.
  Rng rng(1234567);
  EXPECT_EQ(rng.next(), 6457827717110365317ULL);
  EXPECT_EQ(rng.next(), 3203168211198807973ULL);
  EXPECT_EQ(rng.next(), 9817491932198370423ULL);
}

TEST(GenRng, RangeAndChanceStayInBounds) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.range(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
  Rng rng2(99);
  int hits = 0;
  for (int i = 0; i < 1000; ++i) {
    hits += rng2.chance(1, 2) ? 1 : 0;
  }
  // A coin that never (or always) fires would break family parameter mixing.
  EXPECT_GT(hits, 300);
  EXPECT_LT(hits, 700);
}

TEST(GenScenario, RepeatedInvocationsAreByteIdentical) {
  for (const Family family : all_families()) {
    for (const std::uint64_t seed : {1ULL, 17ULL, 4242ULL}) {
      const Scenario a = make_scenario(family, seed);
      const Scenario b = make_scenario(family, seed);
      EXPECT_EQ(scenario_text(a), scenario_text(b))
          << to_string(family) << " seed " << seed;
      const auto ga = derive_task_graph(a.net, a.wcets);
      const auto gb = derive_task_graph(b.net, b.wcets);
      EXPECT_EQ(fingerprint(ga.graph), fingerprint(gb.graph))
          << to_string(family) << " seed " << seed;
    }
  }
}

TEST(GenScenario, ConcurrentGenerationIsByteIdentical) {
  // The same (family, seed) grid rendered from 1, 2 and 8 threads: any
  // hidden shared state (a global RNG, a locale, an allocation-order
  // dependence in the builder) would show up as a diverging byte.
  const std::size_t kSeeds = 24;
  const auto render_all = [&](int threads) {
    std::vector<std::string> texts(kSeeds * all_families().size());
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (std::size_t i = static_cast<std::size_t>(t); i < texts.size();
             i += static_cast<std::size_t>(threads)) {
          const Family family = all_families()[i % all_families().size()];
          const std::uint64_t seed = 1 + i / all_families().size();
          texts[i] = scenario_text(make_scenario(family, seed));
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
    return texts;
  };
  const std::vector<std::string> one = render_all(1);
  EXPECT_EQ(render_all(2), one);
  EXPECT_EQ(render_all(8), one);
}

TEST(GenScenario, ThousandSeedsProduceDistinctFingerprints) {
  // The seed-epsilon contract: distinct seeds below 100003 give distinct
  // derived graphs, per family. 1000 seeds x 8 families, no collision.
  for (const Family family : all_families()) {
    std::set<std::uint64_t> prints;
    for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
      const Scenario s = make_scenario(family, seed);
      const auto derived = derive_task_graph(s.net, s.wcets);
      const bool fresh = prints.insert(fingerprint(derived.graph)).second;
      ASSERT_TRUE(fresh) << to_string(family) << " seed " << seed
                         << " collides with an earlier seed";
    }
  }
}

TEST(GenScenario, EveryFamilyBuildsASchedulableNetwork) {
  for (const Family family : all_families()) {
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
      const Scenario s = make_scenario(family, seed);
      EXPECT_EQ(s.family, family);
      EXPECT_EQ(s.seed, seed);
      EXPECT_GT(s.net.process_count(), 0u) << s.name;
      std::string why;
      EXPECT_TRUE(s.net.in_schedulable_subclass(&why)) << s.name << ": " << why;
      const auto derived = derive_task_graph(s.net, s.wcets);
      EXPECT_GT(derived.graph.job_count(), 0u) << s.name;
      if (family == Family::kSporadic) {
        EXPECT_FALSE(derived.servers.empty()) << s.name;
      }
    }
  }
}

TEST(GenScenario, FamilyNamesRoundTrip) {
  for (const Family family : all_families()) {
    const auto parsed = parse_family(to_string(family));
    ASSERT_TRUE(parsed.has_value()) << to_string(family);
    EXPECT_EQ(*parsed, family);
  }
  EXPECT_FALSE(parse_family("no-such-family").has_value());
}

TEST(GenScenario, SeedSelectedFamilyRoundRobins) {
  std::set<Family> seen;
  for (std::uint64_t seed = 0; seed < all_families().size(); ++seed) {
    seen.insert(make_scenario(seed).family);
  }
  EXPECT_EQ(seen.size(), all_families().size());
}

TEST(GenScenario, TextParsesBackLosslessly) {
  // scenario_text is the repro wire format: parse -> re-derive must give
  // the identical fingerprint with complete WCETs.
  for (const Family family : all_families()) {
    const Scenario s = make_scenario(family, 7);
    const io::ParsedNetwork parsed = io::parse_network_string(scenario_text(s));
    ASSERT_TRUE(parsed.wcets_complete) << s.name;
    const auto original = derive_task_graph(s.net, s.wcets);
    const auto reparsed = derive_task_graph(parsed.net, parsed.wcets);
    EXPECT_EQ(fingerprint(original.graph), fingerprint(reparsed.graph)) << s.name;
  }
}

TEST(GenScenario, JitteredScriptsAreDeterministicAndAdmissible) {
  for (const std::uint64_t seed : {2ULL, 9ULL, 33ULL}) {
    const Scenario s = make_scenario(Family::kSporadic, seed);
    const Duration h = s.net.hyperperiod();
    // SporadicScript's constructor validates (burst, period) admissibility;
    // an inadmissible draw would throw here.
    const auto a = jittered_scripts(s.net, seed, 2, h);
    const auto b = jittered_scripts(s.net, seed, 2, h);
    EXPECT_FALSE(a.empty()) << s.name;
    ASSERT_EQ(a.size(), b.size()) << s.name;
    for (const auto& [pid, script] : a) {
      const auto it = b.find(pid);
      ASSERT_NE(it, b.end());
      EXPECT_EQ(script.times(), it->second.times()) << s.name;
    }
    // A different seed moves at least one arrival (families with zero
    // sporadic invocations drawn are possible but not for these seeds).
    const auto c = jittered_scripts(s.net, seed + 1, 2, h);
    bool any_diff = false;
    for (const auto& [pid, script] : a) {
      const auto it = c.find(pid);
      any_diff = any_diff || it == c.end() || script.times() != it->second.times();
    }
    EXPECT_TRUE(any_diff) << s.name;
  }
}

TEST(GenGraphFamilies, LayeredAndEdgeCaseGraphsAreDeterministic) {
  for (const std::uint64_t seed : {0ULL, 5ULL, 123ULL}) {
    EXPECT_EQ(fingerprint(layered_task_graph(seed)),
              fingerprint(layered_task_graph(seed)));
    EXPECT_EQ(fingerprint(edge_case_task_graph(seed)),
              fingerprint(edge_case_task_graph(seed)));
    EXPECT_NE(fingerprint(layered_task_graph(seed)),
              fingerprint(layered_task_graph(seed + 1)));
  }
}

TEST(GenGraphFamilies, EdgeCaseVariantsCoverTheAdvertisedShapes) {
  // Variant 0 carries zero-WCET jobs; variant 2 forces the Rational
  // fallback (tick-LCM overflow); variants 1 and 3 are tie storms and
  // trivial/antichain shapes. Spot-check each advertised property.
  bool saw_zero_wcet = false;
  for (std::uint64_t seed = 0; seed < 16; seed += 4) {
    const TaskGraph tg = edge_case_task_graph(seed);
    for (const Job& j : tg.jobs()) {
      saw_zero_wcet = saw_zero_wcet || j.wcet == Duration();
    }
  }
  EXPECT_TRUE(saw_zero_wcet);
  for (std::uint64_t seed = 1; seed < 16; seed += 4) {
    const TaskGraph tg = edge_case_task_graph(seed);
    ASSERT_GE(tg.job_count(), 2u);
    const Job& first = tg.jobs().front();
    for (const Job& j : tg.jobs()) {
      EXPECT_EQ(j.arrival, first.arrival);
      EXPECT_EQ(j.wcet, first.wcet);
      EXPECT_EQ(j.deadline, first.deadline);
    }
  }
}

}  // namespace
}  // namespace fppn::gen
