// Parallel schedule search: bit-identical winner selection regardless of
// worker-thread count, never-worse-than-any-single-strategy, and option
// validation.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <limits>
#include <random>

#include "apps/fig1.hpp"
#include "gen/scenario.hpp"
#include "sched/parallel_search.hpp"
#include "sched/registry.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

/// Random layered DAG from the shared gen:: family (the same generator
/// the fuzz loop and the evaluator differential suite draw from).
TaskGraph random_task_graph(std::uint64_t seed) {
  return gen::layered_task_graph(seed);
}

/// Full placement equality: same processor and start time for every job.
void expect_identical_schedules(const StaticSchedule& a, const StaticSchedule& b,
                                std::size_t jobs) {
  ASSERT_EQ(a.job_count(), jobs);
  ASSERT_EQ(b.job_count(), jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    const JobId id{i};
    ASSERT_TRUE(a.is_placed(id));
    ASSERT_TRUE(b.is_placed(id));
    EXPECT_EQ(a.placement(id).processor, b.placement(id).processor) << "job " << i;
    EXPECT_EQ(a.placement(id).start, b.placement(id).start) << "job " << i;
  }
}

sched::ParallelSearchOptions base_options(std::int64_t processors) {
  sched::ParallelSearchOptions opts;
  opts.processors = processors;
  opts.seeds_per_strategy = 3;
  opts.max_iterations = 300;
  opts.restarts = 1;
  return opts;
}

TEST(ParallelSearch, DeterministicAcrossWorkerCounts) {
  // Acceptance criterion: the chosen schedule is bit-identical whether the
  // search runs on 1, 2 or 8 workers.
  for (const std::uint64_t graph_seed : {0ULL, 7ULL, 13ULL}) {
    const TaskGraph tg = random_task_graph(graph_seed);
    sched::ParallelSearchOptions opts = base_options(3);
    opts.workers = 1;
    const auto one = sched::parallel_search(tg, opts);
    for (const int workers : {2, 8}) {
      opts.workers = workers;
      const auto many = sched::parallel_search(tg, opts);
      EXPECT_EQ(many.best.strategy, one.best.strategy) << "graph seed " << graph_seed;
      EXPECT_EQ(many.seed, one.seed) << "graph seed " << graph_seed;
      EXPECT_EQ(many.best.makespan, one.best.makespan) << "graph seed " << graph_seed;
      EXPECT_EQ(many.best.deadline_violations, one.best.deadline_violations);
      expect_identical_schedules(many.best.schedule, one.best.schedule, tg.job_count());
    }
  }
}

TEST(ParallelSearch, RepeatedCallsAreIdentical) {
  const TaskGraph tg = random_task_graph(3);
  const auto a = sched::parallel_search(tg, base_options(3));
  const auto b = sched::parallel_search(tg, base_options(3));
  EXPECT_EQ(a.best.strategy, b.best.strategy);
  EXPECT_EQ(a.seed, b.seed);
  expect_identical_schedules(a.best.schedule, b.best.schedule, tg.job_count());
}

TEST(ParallelSearch, NeverWorseThanAnySingleStrategy) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const auto result = sched::parallel_search(derived.graph, base_options(2));
  auto& registry = sched::StrategyRegistry::global();
  for (const std::string& name : registry.names()) {
    sched::StrategyOptions sopts;
    sopts.processors = 2;
    sopts.max_iterations = 300;
    sopts.restarts = 1;
    const auto single = registry.create(name)->schedule(derived.graph, sopts);
    // Lexicographic objective: violations first, then makespan.
    EXPECT_LE(result.best.deadline_violations, single.deadline_violations) << name;
    if (result.best.deadline_violations == single.deadline_violations) {
      EXPECT_LE(result.best.makespan, single.makespan) << name;
    }
  }
}

TEST(ParallelSearch, FindsFeasibleFig1ScheduleOnTwoProcessors) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const auto result = sched::parallel_search(derived.graph, base_options(2));
  EXPECT_TRUE(result.best.feasible);
  EXPECT_EQ(result.best.deadline_violations, 0u);
  // 4 non-seedable heuristics + 3 seeds each of local-search and
  // partitioned-wfd.
  EXPECT_EQ(result.candidates, 10u);
}

TEST(ParallelSearch, HonorsRestrictedStrategyList) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  sched::ParallelSearchOptions opts = base_options(2);
  opts.strategies = {"b-level"};
  const auto result = sched::parallel_search(derived.graph, opts);
  EXPECT_EQ(result.best.strategy, "b-level");
  EXPECT_EQ(result.candidates, 1u);
}

TEST(ParallelSearch, UnknownStrategyThrowsBeforeSearching) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  sched::ParallelSearchOptions opts = base_options(2);
  opts.strategies = {"alap-edf", "definitely-not-registered"};
  EXPECT_THROW((void)sched::parallel_search(derived.graph, opts),
               sched::UnknownStrategyError);
}

/// User strategy that returns a partial schedule: no placements at all, so
/// its only violations are kUnscheduled (zero *deadline* violations) and
/// its makespan is minimal. It must never beat a feasible candidate.
class BrokenStrategy final : public sched::SchedulerStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "aaa-broken"; }
  [[nodiscard]] std::string description() const override { return "partial schedule"; }
  [[nodiscard]] sched::StrategyResult schedule(
      const TaskGraph& tg, const sched::StrategyOptions& opts) const override {
    sched::StrategyResult result;
    result.strategy = name();
    result.detail = "leaves every job unplaced";
    result.schedule = StaticSchedule(tg.job_count(), opts.processors);
    sched::finalize_result(tg, result);
    return result;
  }
};

TEST(ParallelSearch, FeasibleCandidateOutranksInfeasiblePartialSchedule) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  sched::StrategyRegistry registry;
  sched::register_builtin_strategies(registry);
  // "aaa-broken" sorts first, has zero deadline violations and a zero
  // makespan — it wins every tie-break except the feasibility rank.
  registry.add("aaa-broken", [] { return std::make_unique<BrokenStrategy>(); });
  const auto result = sched::parallel_search(derived.graph, base_options(2), registry);
  EXPECT_TRUE(result.best.feasible);
  EXPECT_NE(result.best.strategy, "aaa-broken");
}

/// User strategy that always throws, to exercise the worker pool's
/// error path.
class ThrowingStrategy final : public sched::SchedulerStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "aaa-throws"; }
  [[nodiscard]] std::string description() const override { return "always throws"; }
  [[nodiscard]] sched::StrategyResult schedule(
      const TaskGraph&, const sched::StrategyOptions&) const override {
    throw std::runtime_error("strategy exploded mid-search");
  }
};

TEST(ParallelSearch, StrategyThrowMidSearchSurfacesFirstError) {
  // A registered strategy that throws must surface its exception on the
  // calling thread — not hang the pool, and not return a partial winner.
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  sched::StrategyRegistry registry;
  sched::register_builtin_strategies(registry);
  registry.add("aaa-throws", [] { return std::make_unique<ThrowingStrategy>(); });
  for (const int workers : {1, 4}) {
    sched::ParallelSearchOptions opts = base_options(2);
    opts.workers = workers;
    try {
      (void)sched::parallel_search(derived.graph, opts, registry);
      FAIL() << "expected the strategy's exception with " << workers << " worker(s)";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "strategy exploded mid-search") << workers << " worker(s)";
    }
  }
}

TEST(ParallelSearch, RanksMakespansNearInt64OverflowWithoutThrowing) {
  // Rational makespan tie-breaking must stay total at the rt/rational
  // overflow guard: comparing e.g. (2^63-1)/3 against (2^63-3)/2 would
  // overflow 64-bit cross products (coprime denominators give gcd no
  // leverage), and a throw here would kill the whole search.
  // 2^63-1 is coprime to 3 and 2^63-3 is odd, so neither rational
  // reduces: both cross products genuinely exceed int64.
  const std::int64_t huge = std::numeric_limits<std::int64_t>::max();
  sched::StrategyResult a;
  a.strategy = "x";
  a.feasible = true;
  a.makespan = Time(Rational(huge, 3));
  sched::StrategyResult b = a;
  b.strategy = "y";
  b.makespan = Time(Rational(huge - 2, 2));

  bool a_wins = false;
  EXPECT_NO_THROW(a_wins = sched::better_search_candidate(a, 1, b, 1));
  EXPECT_TRUE(a_wins);  // huge/3 < (huge-2)/2
  EXPECT_FALSE(sched::better_search_candidate(b, 1, a, 1));

  // Equal violations and makespans fall through to the name tie-break
  // without touching rational arithmetic.
  b.makespan = a.makespan;
  EXPECT_TRUE(sched::better_search_candidate(a, 1, b, 1));  // "x" < "y"
}

TEST(ParallelSearch, ColdVsWarmCachePickBitIdenticalWinner) {
  // Acceptance criterion: a warm-cache search on a repeated graph
  // evaluates 0 candidates yet returns the bit-identical winner of the
  // cold run.
  for (const std::uint64_t graph_seed : {0ULL, 7ULL}) {
    const TaskGraph tg = random_task_graph(graph_seed);
    sched::ScheduleCache cache;
    sched::ParallelSearchOptions opts = base_options(3);
    opts.cache = &cache;

    const auto cold = sched::parallel_search(tg, opts);
    EXPECT_EQ(cold.evaluated, cold.candidates);
    EXPECT_EQ(cold.cache_hits, 0u);

    const auto warm = sched::parallel_search(tg, opts);
    EXPECT_EQ(warm.evaluated, 0u) << "graph seed " << graph_seed;
    EXPECT_EQ(warm.cache_hits, warm.candidates);
    EXPECT_EQ(warm.candidates, cold.candidates);

    EXPECT_EQ(warm.best.strategy, cold.best.strategy);
    EXPECT_EQ(warm.seed, cold.seed);
    EXPECT_EQ(warm.best.detail, cold.best.detail);
    EXPECT_EQ(warm.best.makespan, cold.best.makespan);
    EXPECT_EQ(warm.best.deadline_violations, cold.best.deadline_violations);
    EXPECT_EQ(warm.best.feasible, cold.best.feasible);
    expect_identical_schedules(warm.best.schedule, cold.best.schedule, tg.job_count());
  }
}

TEST(ParallelSearch, CacheMatchesUncachedWinner) {
  // Attaching a cache must not change the search outcome at all.
  const TaskGraph tg = random_task_graph(11);
  const auto plain = sched::parallel_search(tg, base_options(3));
  sched::ScheduleCache cache;
  sched::ParallelSearchOptions opts = base_options(3);
  opts.cache = &cache;
  const auto cached = sched::parallel_search(tg, opts);
  EXPECT_EQ(cached.best.strategy, plain.best.strategy);
  EXPECT_EQ(cached.seed, plain.seed);
  expect_identical_schedules(cached.best.schedule, plain.best.schedule, tg.job_count());
}

TEST(ParallelSearch, CacheIsPerGraphNotGlobal) {
  // A warm cache for one graph must not satisfy a different graph: the
  // fingerprint in the key separates them.
  sched::ScheduleCache cache;
  sched::ParallelSearchOptions opts = base_options(3);
  opts.cache = &cache;
  const TaskGraph a = random_task_graph(1);
  const TaskGraph b = random_task_graph(2);
  (void)sched::parallel_search(a, opts);
  const auto fresh = sched::parallel_search(b, opts);
  EXPECT_EQ(fresh.cache_hits, 0u);
  EXPECT_EQ(fresh.evaluated, fresh.candidates);
}

TEST(ParallelSearch, BudgetChangeMissesTheCache) {
  // max_iterations/restarts are part of the key: a bigger budget may find
  // a different schedule, so it must not reuse small-budget entries.
  const TaskGraph tg = random_task_graph(4);
  sched::ScheduleCache cache;
  sched::ParallelSearchOptions opts = base_options(3);
  opts.cache = &cache;
  (void)sched::parallel_search(tg, opts);
  opts.max_iterations = opts.max_iterations * 2;
  const auto rerun = sched::parallel_search(tg, opts);
  EXPECT_EQ(rerun.cache_hits, 0u);
}

TEST(ParallelSearch, CachedWarmStartIsNotAPlanCandidate) {
  // "cached-warm-start" depends on cache contents, so the deterministic
  // candidate matrix must never contain it implicitly — it joins through
  // the overlay. Naming it explicitly still works (degenerates to plain
  // local search).
  sched::ParallelSearchOptions opts = base_options(2);
  for (const sched::SearchCandidate& c : sched::enumerate_search_candidates(opts)) {
    EXPECT_NE(c.strategy, "cached-warm-start");
  }
  opts.strategies = {"cached-warm-start"};
  const auto explicit_candidates = sched::enumerate_search_candidates(opts);
  EXPECT_EQ(explicit_candidates.size(), 3u);  // seedable: seeds_per_strategy
  EXPECT_EQ(explicit_candidates[0].strategy, "cached-warm-start");
}

TEST(ParallelSearch, WarmStartOverlayMatchesOrBeatsTheColdWinner) {
  // The acceptance contract of the warm-start overlay: against the same
  // cache, a warm rerun either reports the bit-identical winner of the
  // cold run or a strictly better schedule — never a different-but-equal
  // winner and never a worse one.
  for (const std::uint64_t graph_seed : {0ULL, 7ULL, 13ULL}) {
    const TaskGraph tg = random_task_graph(graph_seed);
    const auto plain = sched::parallel_search(tg, base_options(3));

    sched::ScheduleCache cache;
    sched::ParallelSearchOptions opts = base_options(3);
    opts.cache = &cache;
    opts.warm_start = true;
    const auto cold = sched::parallel_search(tg, opts);
    const auto warm = sched::parallel_search(tg, opts);

    // Never worse than the plain (no-cache, no-overlay) winner.
    for (const auto* run : {&cold, &warm}) {
      EXPECT_GE(run->best.feasible, plain.best.feasible);
      EXPECT_LE(run->best.deadline_violations, plain.best.deadline_violations);
      if (run->best.feasible == plain.best.feasible &&
          run->best.deadline_violations == plain.best.deadline_violations) {
        EXPECT_LE(run->best.makespan, plain.best.makespan);
      }
      if (!run->warm_start_won) {
        // Match: the plan winner survived the overlay bit-identically.
        EXPECT_EQ(run->best.strategy, plain.best.strategy);
        EXPECT_EQ(run->seed, plain.seed);
        expect_identical_schedules(run->best.schedule, plain.best.schedule,
                                   tg.job_count());
      } else {
        EXPECT_EQ(run->best.strategy, "cached-warm-start");
      }
    }
    // Cold and warm see the same cache contents (warm-start results are
    // never stored), so the two runs are bit-identical end to end.
    EXPECT_EQ(warm.best.strategy, cold.best.strategy);
    EXPECT_EQ(warm.seed, cold.seed);
    EXPECT_EQ(warm.best.detail, cold.best.detail);
    EXPECT_EQ(warm.warm_start_won, cold.warm_start_won);
    EXPECT_EQ(warm.evaluated, 0u);
    expect_identical_schedules(warm.best.schedule, cold.best.schedule, tg.job_count());
  }
}

TEST(ParallelSearch, WarmVsColdBitIdenticalWinnerWithEvictionOn) {
  // Acceptance criterion: with a size-bounded disk cache, a warm rerun
  // still reports the identical winner of the cold cached run, and the
  // directory never exceeds the bound.
  const TaskGraph tg = random_task_graph(7);
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("fppn_warm_evict_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  const std::size_t bound = 12;  // >= the 10-candidate matrix

  sched::ParallelSearchOptions opts = base_options(3);
  opts.warm_start = true;
  sched::ScheduleCache cold_cache(dir, bound);
  opts.cache = &cold_cache;
  const auto cold = sched::parallel_search(tg, opts);

  sched::ScheduleCache warm_cache(dir, bound);
  opts.cache = &warm_cache;
  const auto warm = sched::parallel_search(tg, opts);

  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    entries += e.path().extension() == ".sched" ? 1 : 0;
  }
  EXPECT_LE(entries, bound);
  EXPECT_EQ(warm.evaluated, 0u);
  EXPECT_EQ(warm.cache_hits, warm.candidates);
  EXPECT_EQ(warm.best.strategy, cold.best.strategy);
  EXPECT_EQ(warm.seed, cold.seed);
  EXPECT_EQ(warm.best.detail, cold.best.detail);
  EXPECT_EQ(warm.best.makespan, cold.best.makespan);
  expect_identical_schedules(warm.best.schedule, cold.best.schedule, tg.job_count());
  std::filesystem::remove_all(dir);
}

TEST(ParallelSearch, RejectsBadOptions) {
  const TaskGraph tg = random_task_graph(1);
  sched::ParallelSearchOptions opts = base_options(0);
  EXPECT_THROW((void)sched::parallel_search(tg, opts), std::invalid_argument);
  opts = base_options(2);
  opts.seeds_per_strategy = 0;
  EXPECT_THROW((void)sched::parallel_search(tg, opts), std::invalid_argument);
}

}  // namespace
}  // namespace fppn
