// Partitioned scheduling (process-to-processor pinning, the paper's
// "multiple process automata mapped to the same thread according to
// static mapping mu_i").
#include "sched/partitioned.hpp"

#include <gtest/gtest.h>

#include "apps/fig1.hpp"
#include "apps/fms.hpp"
#include "runtime/vm_runtime.hpp"
#include "sched/parallel_search.hpp"
#include "sched/registry.hpp"
#include "sched/search.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

TEST(Partitioned, AllJobsOfAProcessShareOneProcessor) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const PartitionedResult result =
      partition_and_schedule(derived.graph, app.net.process_count(), 3);
  for (std::size_t i = 0; i < app.net.process_count(); ++i) {
    const auto jobs = derived.graph.jobs_of(ProcessId{i});
    for (const JobId j : jobs) {
      EXPECT_EQ(result.schedule.placement(j).processor, result.assignment[i])
          << derived.graph.job(j).name;
    }
  }
}

TEST(Partitioned, Fig1FeasibleOnThreeProcessors) {
  // Pinning removes migration freedom; the Fig. 3 graph still fits.
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const PartitionedResult result =
      partition_and_schedule(derived.graph, app.net.process_count(), 3);
  EXPECT_TRUE(result.feasible)
      << result.schedule.check_feasibility(derived.graph).to_string(derived.graph);
}

TEST(Partitioned, NeverBeatsGlobalScheduling) {
  // Partitioning is a restriction of global list scheduling: when both
  // are feasible, the global makespan is never worse than the best we
  // found here... but at minimum it must satisfy Def. 3.2 whenever it
  // claims feasibility — and an infeasible global instance can never
  // become feasible by pinning (pinning only removes options, for the
  // same SP order).
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  for (const std::int64_t m : {2, 3, 4}) {
    const PartitionedResult pinned =
        partition_and_schedule(derived.graph, app.net.process_count(), m);
    if (pinned.feasible) {
      const ScheduleAttempt global = best_schedule(derived.graph, m);
      EXPECT_TRUE(global.feasible) << m;
    }
  }
}

TEST(Partitioned, FmsSingleProcessorDegeneratesToGlobal) {
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  const PartitionedResult result =
      partition_and_schedule(derived.graph, app.net.process_count(), 1);
  EXPECT_TRUE(result.feasible);
  for (const ProcessorId p : result.assignment) {
    if (p.is_valid()) {
      EXPECT_EQ(p, ProcessorId(0));
    }
  }
}

TEST(Partitioned, VmRunsPartitionedScheduleDeterministically) {
  // The online policy + the paper's thread-style mapping: histories still
  // equal the zero-delay reference.
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const PartitionedResult result =
      partition_and_schedule(derived.graph, app.net.process_count(), 3);
  ASSERT_TRUE(result.feasible);
  const InputScripts inputs = app.make_inputs({5, 6, 7, 8}, {1.5});
  std::map<ProcessId, SporadicScript> scripts;
  scripts.emplace(app.coef_b, SporadicScript({Time::ms(110)}, 2, Duration::ms(700)));
  VmRunOptions opts;
  opts.frames = 2;
  const RunResult run = run_static_order_vm(app.net, derived, result.schedule, opts,
                                            inputs, scripts);
  EXPECT_TRUE(run.met_all_deadlines());
  const ZeroDelayResult ref =
      zero_delay_reference(app.net, derived.hyperperiod, 2, inputs, scripts);
  EXPECT_TRUE(run.histories.functionally_equal(ref.histories))
      << run.histories.diff(ref.histories, app.net);
}

TEST(Partitioned, ExplicitAssignmentRespected) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  std::vector<ProcessorId> everyone_on_one(app.net.process_count(), ProcessorId(1));
  const StaticSchedule s = partitioned_list_schedule(
      derived.graph, everyone_on_one,
      schedule_priority(derived.graph, PriorityHeuristic::kAlapEdf), 2);
  // Serialized on M2: 250 ms of work; mutex/precedence must still hold.
  const auto report = s.check_feasibility(derived.graph);
  bool mutex_ok = true;
  for (const Violation& v : report.violations) {
    mutex_ok &= v.kind == ViolationKind::kDeadline;  // only deadline misses
  }
  EXPECT_TRUE(mutex_ok);
  EXPECT_EQ(s.makespan(derived.graph), Time::ms(250));
}

TEST(PartitionedStrategy, RegisteredInGlobalRegistry) {
  auto& registry = sched::StrategyRegistry::global();
  ASSERT_TRUE(registry.contains("partitioned-wfd"));
  const auto strategy = registry.create("partitioned-wfd");
  EXPECT_EQ(strategy->name(), "partitioned-wfd");
  EXPECT_TRUE(strategy->seedable());
  EXPECT_FALSE(strategy->description().empty());
}

TEST(PartitionedStrategy, FeasibleOnFig7FmsWorkload) {
  // The paper's FMS case study (§V-B, 812 jobs) through the registry: the
  // partitioned strategy must find a feasible static mapping mu_i.
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  sched::StrategyOptions opts;
  opts.processors = 3;
  opts.seed = 1;
  const auto result =
      sched::StrategyRegistry::global().create("partitioned-wfd")->schedule(
          derived.graph, opts);
  EXPECT_TRUE(result.feasible)
      << result.schedule.check_feasibility(derived.graph).to_string(derived.graph);
  EXPECT_EQ(result.strategy, "partitioned-wfd");
}

TEST(PartitionedStrategy, PinsEveryProcessViaRegistry) {
  // The defining property must survive the strategy wrapper: all jobs of a
  // process share one processor.
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  sched::StrategyOptions opts;
  opts.processors = 3;
  const auto result =
      sched::StrategyRegistry::global().create("partitioned-wfd")->schedule(
          derived.graph, opts);
  for (std::size_t p = 0; p < app.net.process_count(); ++p) {
    const auto jobs = derived.graph.jobs_of(ProcessId{p});
    for (std::size_t j = 1; j < jobs.size(); ++j) {
      EXPECT_EQ(result.schedule.placement(jobs[j]).processor,
                result.schedule.placement(jobs[0]).processor)
          << derived.graph.job(jobs[j]).name;
    }
  }
}

TEST(PartitionedStrategy, AssignmentStableAcrossSeeds) {
  // The seed varies only the SP heuristic inside the fixed partition; the
  // WFD process-to-processor assignment itself is seed-independent, so
  // every seed pins each process to the same processor.
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const auto strategy = sched::StrategyRegistry::global().create("partitioned-wfd");

  std::vector<ProcessorId> reference;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    sched::StrategyOptions opts;
    opts.processors = 3;
    opts.seed = seed;
    const auto result = strategy->schedule(derived.graph, opts);
    std::vector<ProcessorId> assignment(app.net.process_count());
    for (std::size_t p = 0; p < app.net.process_count(); ++p) {
      const auto jobs = derived.graph.jobs_of(ProcessId{p});
      if (!jobs.empty()) {
        assignment[p] = result.schedule.placement(jobs[0]).processor;
      }
    }
    if (seed == 0) {
      reference = assignment;
    } else {
      EXPECT_EQ(assignment, reference) << "seed " << seed;
    }
  }
}

TEST(PartitionedStrategy, ParticipatesInParallelSearchByDefault) {
  // With an empty strategy list, the search enumerates the whole registry —
  // restricting it to partitioned-wfd must also work and tag the result.
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  sched::ParallelSearchOptions opts;
  opts.processors = 3;
  opts.strategies = {"partitioned-wfd"};
  opts.seeds_per_strategy = 4;
  const auto result = sched::parallel_search(derived.graph, opts);
  EXPECT_EQ(result.best.strategy, "partitioned-wfd");
  EXPECT_EQ(result.candidates, 4u);
  EXPECT_TRUE(result.best.feasible);
}

void expect_same_placements(const TaskGraph& tg, const StaticSchedule& a,
                            const StaticSchedule& b, const std::string& context) {
  ASSERT_EQ(a.job_count(), b.job_count()) << context;
  for (std::size_t i = 0; i < a.job_count(); ++i) {
    const JobId id(i);
    ASSERT_EQ(a.is_placed(id), b.is_placed(id)) << context << " " << tg.job(id).name;
    if (!a.is_placed(id)) {
      continue;
    }
    EXPECT_EQ(a.placement(id).processor, b.placement(id).processor)
        << context << " " << tg.job(id).name;
    EXPECT_EQ(a.placement(id).start, b.placement(id).start)
        << context << " " << tg.job(id).name;
  }
}

TEST(Partitioned, KernelAndNaivePipelinesBitIdentical) {
  // partition_and_schedule with the partition-constrained evaluator vs
  // the reference O(n²) rescan: same assignment, placements, feasibility.
  const auto fig1 = apps::build_fig1();
  const auto fms = apps::build_fms();
  const auto d1 = derive_task_graph(fig1.net, fig1.fig3_wcets());
  const auto d2 = derive_task_graph(fms.net, fms.default_wcets());
  struct Case {
    const TaskGraph* tg;
    std::size_t processes;
    const char* name;
  };
  const Case cases[] = {{&d1.graph, fig1.net.process_count(), "fig1"},
                        {&d2.graph, fms.net.process_count(), "fms"}};
  for (const Case& c : cases) {
    for (const std::int64_t m : {1, 2, 3, 4}) {
      for (const PriorityHeuristic h : all_heuristics()) {
        const PartitionedResult fast =
            partition_and_schedule(*c.tg, c.processes, m, h, /*use_kernel=*/true);
        const PartitionedResult ref =
            partition_and_schedule(*c.tg, c.processes, m, h, /*use_kernel=*/false);
        const std::string context = std::string(c.name) + " M" + std::to_string(m) +
                                    " " + to_string(h);
        EXPECT_EQ(fast.assignment, ref.assignment) << context;
        EXPECT_EQ(fast.feasible, ref.feasible) << context;
        expect_same_placements(*c.tg, fast.schedule, ref.schedule, context);
      }
    }
  }
}

TEST(Partitioned, SchedulerReuseMatchesPerCallPipeline) {
  // One PartitionedScheduler scratch scheduling many orders must be
  // bit-identical to a fresh partitioned_list_schedule per order — the
  // reuse the partitioned-wfd strategy leans on across search seeds.
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  PartitionedScheduler scheduler(derived.graph, app.net.process_count(), 3);
  EXPECT_EQ(scheduler.processor_count(), 3);
  EXPECT_EQ(scheduler.assignment(),
            wfd_assignment(derived.graph, app.net.process_count(), 3));
  for (const PriorityHeuristic h : all_heuristics()) {
    const std::vector<JobId> order = schedule_priority(derived.graph, h);
    const StaticSchedule ref = partitioned_list_schedule(
        derived.graph, scheduler.assignment(), order, 3);
    expect_same_placements(derived.graph, scheduler.schedule_order(order), ref,
                           "reuse " + to_string(h));
    // Score-only evaluation agrees with the materialized schedule.
    const sched::EvalScore score = scheduler.evaluate_order(order);
    EXPECT_EQ(score.deadline_violations, ref.count_violations(derived.graph).deadline)
        << to_string(h);
    EXPECT_EQ(score.makespan, ref.makespan(derived.graph)) << to_string(h);
  }
}

TEST(Partitioned, ReferenceModeSchedulerHasNoScoreOnlyPath) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  PartitionedScheduler reference(derived.graph, app.net.process_count(), 3,
                                 /*use_kernel=*/false);
  const std::vector<JobId> order =
      schedule_priority(derived.graph, PriorityHeuristic::kAlapEdf);
  // schedule_order still works (it runs the reference rescan)…
  const StaticSchedule s = reference.schedule_order(order);
  EXPECT_EQ(s.job_count(), derived.graph.job_count());
  // …but score-only evaluation needs the kernel.
  EXPECT_THROW((void)reference.evaluate_order(order), std::logic_error);
}

TEST(Partitioned, InvalidInputsRejected) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  EXPECT_THROW(partition_and_schedule(derived.graph, app.net.process_count(), 0),
               std::invalid_argument);
  EXPECT_THROW(partition_and_schedule(derived.graph, 2, 2), std::invalid_argument);
  std::vector<ProcessorId> unassigned(app.net.process_count());
  EXPECT_THROW(
      partitioned_list_schedule(
          derived.graph, unassigned,
          schedule_priority(derived.graph, PriorityHeuristic::kAlapEdf), 2),
      std::invalid_argument);
}

}  // namespace
}  // namespace fppn
