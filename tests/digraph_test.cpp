#include "graph/digraph.hpp"

#include <gtest/gtest.h>

namespace fppn {
namespace {

TEST(Digraph, StartsEmpty) {
  const Digraph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Digraph, AddNodesAndEdges) {
  Digraph g(3);
  EXPECT_TRUE(g.add_edge(NodeId(0), NodeId(1)));
  EXPECT_TRUE(g.add_edge(NodeId(1), NodeId(2)));
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(NodeId(0), NodeId(1)));
  EXPECT_FALSE(g.has_edge(NodeId(1), NodeId(0)));
}

TEST(Digraph, ParallelEdgeIgnored) {
  Digraph g(2);
  EXPECT_TRUE(g.add_edge(NodeId(0), NodeId(1)));
  EXPECT_FALSE(g.add_edge(NodeId(0), NodeId(1)));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Digraph, SelfLoopRejected) {
  Digraph g(1);
  EXPECT_THROW(g.add_edge(NodeId(0), NodeId(0)), std::invalid_argument);
}

TEST(Digraph, OutOfRangeRejected) {
  Digraph g(1);
  EXPECT_THROW(g.add_edge(NodeId(0), NodeId(5)), std::invalid_argument);
  EXPECT_THROW(g.add_edge(NodeId(), NodeId(0)), std::invalid_argument);
}

TEST(Digraph, RemoveEdge) {
  Digraph g(2);
  g.add_edge(NodeId(0), NodeId(1));
  EXPECT_TRUE(g.remove_edge(NodeId(0), NodeId(1)));
  EXPECT_FALSE(g.remove_edge(NodeId(0), NodeId(1)));
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.successors(NodeId(0)).empty());
  EXPECT_TRUE(g.predecessors(NodeId(1)).empty());
}

TEST(Digraph, AdjacencyBothDirections) {
  Digraph g(3);
  g.add_edge(NodeId(0), NodeId(2));
  g.add_edge(NodeId(1), NodeId(2));
  EXPECT_EQ(g.in_degree(NodeId(2)), 2u);
  EXPECT_EQ(g.out_degree(NodeId(0)), 1u);
  EXPECT_EQ(g.predecessors(NodeId(2)).size(), 2u);
}

TEST(Digraph, EdgesEnumeration) {
  Digraph g(3);
  g.add_edge(NodeId(2), NodeId(0));
  g.add_edge(NodeId(0), NodeId(1));
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  // Deterministic (from-node, insertion) order.
  EXPECT_EQ(edges[0].first, NodeId(0));
  EXPECT_EQ(edges[1].first, NodeId(2));
}

TEST(Digraph, AddNodeGrows) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  EXPECT_EQ(a, NodeId(0));
  EXPECT_EQ(b, NodeId(1));
  EXPECT_EQ(g.node_count(), 2u);
}

}  // namespace
}  // namespace fppn
