// Randomized algebraic stress for Rational against a __int128 reference:
// field axioms, exact ordering, floor/ceil/gcd/lcm identities — the time
// arithmetic everything else stands on.
#include <gtest/gtest.h>

#include <random>

#include "rt/rational.hpp"

namespace fppn {
namespace {

/// Exact comparison of a Rational to num/den in 128-bit (den > 0).
bool equals(const Rational& r, __int128 num, __int128 den) {
  return static_cast<__int128>(r.num()) * den ==
         num * static_cast<__int128>(r.den());
}

struct Raw {
  std::int64_t num;
  std::int64_t den;  // > 0
};

Raw draw(std::mt19937_64& rng) {
  std::uniform_int_distribution<std::int64_t> num_dist(-100000, 100000);
  std::uniform_int_distribution<std::int64_t> den_dist(1, 5000);
  return Raw{num_dist(rng), den_dist(rng)};
}

class RationalStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RationalStress, ArithmeticMatches128BitReference) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const Raw a = draw(rng);
    const Raw b = draw(rng);
    const Rational ra(a.num, a.den);
    const Rational rb(b.num, b.den);

    // a + b = (a.n*b.d + b.n*a.d) / (a.d*b.d)
    EXPECT_TRUE(equals(ra + rb,
                       static_cast<__int128>(a.num) * b.den +
                           static_cast<__int128>(b.num) * a.den,
                       static_cast<__int128>(a.den) * b.den));
    EXPECT_TRUE(equals(ra - rb,
                       static_cast<__int128>(a.num) * b.den -
                           static_cast<__int128>(b.num) * a.den,
                       static_cast<__int128>(a.den) * b.den));
    EXPECT_TRUE(equals(ra * rb, static_cast<__int128>(a.num) * b.num,
                       static_cast<__int128>(a.den) * b.den));
    if (b.num != 0) {
      const __int128 num = static_cast<__int128>(a.num) * b.den;
      const __int128 den = static_cast<__int128>(a.den) * b.num;
      EXPECT_TRUE(equals(ra / rb, den < 0 ? -num : num, den < 0 ? -den : den));
    }
    // Ordering agrees with cross multiplication.
    const __int128 lhs = static_cast<__int128>(a.num) * b.den;
    const __int128 rhs = static_cast<__int128>(b.num) * a.den;
    EXPECT_EQ(ra < rb, lhs < rhs);
    EXPECT_EQ(ra == rb, lhs == rhs);
  }
}

TEST_P(RationalStress, FieldAxiomsSampled) {
  std::mt19937_64 rng(GetParam() * 31 + 7);
  for (int i = 0; i < 200; ++i) {
    const Raw a = draw(rng);
    const Raw b = draw(rng);
    const Raw c = draw(rng);
    const Rational ra(a.num, a.den);
    const Rational rb(b.num, b.den);
    const Rational rc(c.num, c.den);
    EXPECT_EQ(ra + rb, rb + ra);
    EXPECT_EQ((ra + rb) + rc, ra + (rb + rc));
    EXPECT_EQ(ra * (rb + rc), ra * rb + ra * rc);
    EXPECT_EQ(ra + Rational(0), ra);
    EXPECT_EQ(ra * Rational(1), ra);
    EXPECT_EQ(ra + (-ra), Rational(0));
    if (!ra.is_zero()) {
      EXPECT_EQ(ra / ra, Rational(1));
    }
  }
}

TEST_P(RationalStress, FloorCeilIdentities) {
  std::mt19937_64 rng(GetParam() * 97 + 3);
  for (int i = 0; i < 300; ++i) {
    const Raw a = draw(rng);
    const Rational r(a.num, a.den);
    const std::int64_t f = r.floor();
    const std::int64_t c = r.ceil();
    EXPECT_LE(Rational(f), r);
    EXPECT_LT(r, Rational(f + 1));
    EXPECT_GE(Rational(c), r);
    EXPECT_GT(r, Rational(c - 1));
    EXPECT_TRUE(c == f || c == f + 1);
    EXPECT_EQ(c == f, r.is_integer());
    EXPECT_EQ((-r).floor(), -c);  // floor(-x) == -ceil(x)
  }
}

TEST_P(RationalStress, GcdLcmIdentities) {
  std::mt19937_64 rng(GetParam() * 11 + 1);
  std::uniform_int_distribution<std::int64_t> pos(1, 3000);
  for (int i = 0; i < 300; ++i) {
    const Rational a(pos(rng), pos(rng));
    const Rational b(pos(rng), pos(rng));
    const Rational g = Rational::gcd(a, b);
    const Rational l = Rational::lcm(a, b);
    // gcd divides both; both divide lcm (division yields integers).
    EXPECT_TRUE((a / g).is_integer()) << a << " " << b;
    EXPECT_TRUE((b / g).is_integer());
    EXPECT_TRUE((l / a).is_integer());
    EXPECT_TRUE((l / b).is_integer());
    // gcd * lcm == a * b (up to sign; all positive here).
    EXPECT_EQ(g * l, a * b);
    // lcm is the hyperperiod: idempotent and commutative.
    EXPECT_EQ(Rational::lcm(a, b), Rational::lcm(b, a));
    EXPECT_EQ(Rational::lcm(a, a), a);
  }
}

TEST_P(RationalStress, FloorDivMatchesReference) {
  std::mt19937_64 rng(GetParam() * 13 + 5);
  std::uniform_int_distribution<std::int64_t> pos(1, 3000);
  for (int i = 0; i < 300; ++i) {
    const Raw a = draw(rng);
    const Rational ra(a.num, a.den);
    const Rational rb(pos(rng), pos(rng));
    const std::int64_t q = Rational::floor_div(ra, rb);
    EXPECT_LE(rb * Rational(q), ra);
    EXPECT_GT(rb * Rational(q + 1), ra);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalStress,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace fppn
