#include "taskgraph/task_graph.hpp"

#include <gtest/gtest.h>

namespace fppn {
namespace {

Job make_job(const std::string& name, std::int64_t a, std::int64_t d, std::int64_t c,
             std::size_t process = 0, std::int64_t k = 1) {
  Job j;
  j.process = ProcessId{process};
  j.k = k;
  j.arrival = Time::ms(a);
  j.deadline = Time::ms(d);
  j.wcet = Duration::ms(c);
  j.name = name;
  return j;
}

TEST(TaskGraph, AddJobsAndEdges) {
  TaskGraph tg(Duration::ms(200));
  const JobId a = tg.add_job(make_job("A[1]", 0, 100, 10));
  const JobId b = tg.add_job(make_job("B[1]", 0, 200, 20, 1));
  EXPECT_TRUE(tg.add_edge(a, b));
  EXPECT_FALSE(tg.add_edge(a, b));  // parallel edge ignored
  EXPECT_EQ(tg.job_count(), 2u);
  EXPECT_EQ(tg.edge_count(), 1u);
  EXPECT_EQ(tg.successors(a), std::vector<JobId>{b});
  EXPECT_EQ(tg.predecessors(b), std::vector<JobId>{a});
  EXPECT_EQ(tg.hyperperiod(), Duration::ms(200));
}

TEST(TaskGraph, RejectsInvalidJobs) {
  TaskGraph tg;
  EXPECT_THROW(tg.add_job(make_job("bad", 100, 50, 10)), std::invalid_argument);
  Job negative = make_job("neg", 0, 100, 10);
  negative.wcet = -Duration::ms(1);
  EXPECT_THROW(tg.add_job(negative), std::invalid_argument);
}

TEST(TaskGraph, FindByName) {
  TaskGraph tg;
  tg.add_job(make_job("X[1]", 0, 10, 1));
  EXPECT_TRUE(tg.find("X[1]").has_value());
  EXPECT_FALSE(tg.find("Y[1]").has_value());
}

TEST(TaskGraph, JobsOfProcessInKOrder) {
  TaskGraph tg;
  tg.add_job(make_job("P[1]", 0, 100, 5, 3, 1));
  tg.add_job(make_job("Q[1]", 0, 100, 5, 2, 1));
  tg.add_job(make_job("P[2]", 50, 150, 5, 3, 2));
  const auto jobs = tg.jobs_of(ProcessId{3});
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(tg.job(jobs[0]).k, 1);
  EXPECT_EQ(tg.job(jobs[1]).k, 2);
}

TEST(TaskGraph, TotalWork) {
  TaskGraph tg;
  tg.add_job(make_job("A", 0, 100, 10));
  tg.add_job(make_job("B", 0, 100, 15));
  EXPECT_EQ(tg.total_work(), Duration::ms(25));
}

TEST(TaskGraph, AcyclicityCheck) {
  TaskGraph tg;
  const JobId a = tg.add_job(make_job("A", 0, 100, 1));
  const JobId b = tg.add_job(make_job("B", 0, 100, 1));
  tg.add_edge(a, b);
  EXPECT_TRUE(tg.is_acyclic());
  tg.add_edge(b, a);
  EXPECT_FALSE(tg.is_acyclic());
}

TEST(TaskGraph, TransitiveReduce) {
  TaskGraph tg;
  const JobId a = tg.add_job(make_job("A", 0, 100, 1));
  const JobId b = tg.add_job(make_job("B", 0, 100, 1));
  const JobId c = tg.add_job(make_job("C", 0, 100, 1));
  tg.add_edge(a, b);
  tg.add_edge(b, c);
  tg.add_edge(a, c);
  EXPECT_EQ(tg.transitive_reduce(), 1u);
  EXPECT_FALSE(tg.has_edge(a, c));
}

TEST(TaskGraph, DotAndTableRendering) {
  TaskGraph tg;
  const JobId a = tg.add_job(make_job("InputA[1]", 0, 200, 25));
  const JobId b = tg.add_job(make_job("FilterA[1]", 0, 100, 25, 1));
  tg.add_edge(a, b);
  const std::string dot = tg.to_dot();
  EXPECT_NE(dot.find("InputA[1]"), std::string::npos);
  EXPECT_NE(dot.find("(0,200,25)"), std::string::npos);
  const std::string table = tg.to_table();
  EXPECT_NE(table.find("FilterA[1]"), std::string::npos);
}

TEST(TaskGraph, OutOfRangeAccessThrows) {
  TaskGraph tg;
  tg.add_job(make_job("A", 0, 100, 1));
  EXPECT_THROW((void)tg.job(JobId(5)), std::invalid_argument);
  EXPECT_THROW((void)tg.job(JobId()), std::invalid_argument);
}

}  // namespace
}  // namespace fppn
