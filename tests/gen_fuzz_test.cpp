// The differential fuzz loop: clean sweeps over every generated family,
// deterministic stats, and — via the test-only injected bug — proof that
// a mismatch shrinks to a minimal spec and round-trips through a written
// repro that `--replay` re-triggers.
#include "gen/fuzz.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

namespace fppn::gen {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("fppn_gen_fuzz_test_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

FuzzConfig quick_config() {
  FuzzConfig cfg;
  cfg.max_iterations = 60;
  cfg.restarts = 1;
  return cfg;
}

TEST(FuzzLoop, CleanSweepAcrossAllFamilies) {
  // The headline acceptance property at test scale: a batch of seeds over
  // every family, zero mismatches, and both oracles actually engaged.
  FuzzRunConfig run;
  run.base_seed = 1;
  run.seeds = 48;
  run.check = quick_config();
  const FuzzStats stats = run_fuzz(run);
  EXPECT_EQ(stats.scenarios, 48u);
  EXPECT_TRUE(stats.mismatches.empty())
      << stats.mismatches.front().check << ": " << stats.mismatches.front().detail;
  EXPECT_GT(stats.jobs, 0u);
  EXPECT_GT(stats.ta_checked, 0u);
  EXPECT_GT(stats.trace_checked, 0u);
  EXPECT_EQ(stats.per_family.size(), all_families().size());
}

TEST(FuzzLoop, StatsAreDeterministic) {
  FuzzRunConfig run;
  run.base_seed = 100;
  run.seeds = 16;
  run.check = quick_config();
  const FuzzStats a = run_fuzz(run);
  const FuzzStats b = run_fuzz(run);
  EXPECT_EQ(a.scenarios, b.scenarios);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.ta_checked, b.ta_checked);
  EXPECT_EQ(a.trace_checked, b.trace_checked);
  EXPECT_EQ(a.per_family, b.per_family);
}

TEST(FuzzLoop, FamilyRestrictionIsHonored) {
  FuzzRunConfig run;
  run.base_seed = 1;
  run.seeds = 6;
  run.families = {Family::kSporadic};
  run.check = quick_config();
  const FuzzStats stats = run_fuzz(run);
  ASSERT_EQ(stats.per_family.size(), 1u);
  EXPECT_EQ(stats.per_family.begin()->first, to_string(Family::kSporadic));
  EXPECT_EQ(stats.per_family.begin()->second, 6u);
  EXPECT_EQ(stats.trace_checked, 6u) << "every sporadic scenario is trace-checked";
}

TEST(FuzzInjectedBug, MismatchIsDetectedAndShrinksToMinimalSpec) {
  FuzzConfig cfg = quick_config();
  cfg.inject_bug = true;
  // A rich multi-process scenario with channels and priorities to give
  // the shrinker real work.
  const Scenario full = make_scenario(Family::kDiamond, 2);
  ASSERT_GT(full.spec.processes.size(), 3u);
  const FuzzVerdict verdict = check_scenario(full, cfg);
  ASSERT_TRUE(verdict.mismatch.has_value());
  EXPECT_EQ(verdict.mismatch->check, "injected-bug");

  int steps = 0;
  const Scenario tiny = shrink_scenario(full, *verdict.mismatch, cfg, &steps);
  EXPECT_GT(steps, 0);
  // The injected bug fires on any >= 2-job graph, so greedy dropping must
  // reach the 2-process floor and strip every channel and priority.
  EXPECT_LE(tiny.spec.processes.size(), 2u);
  EXPECT_TRUE(tiny.spec.channels.empty());
  EXPECT_TRUE(tiny.spec.priorities.empty());
  // Still triggers the same check.
  const FuzzVerdict again = check_scenario(tiny, cfg);
  ASSERT_TRUE(again.mismatch.has_value());
  EXPECT_EQ(again.mismatch->check, "injected-bug");
  // And without the injection the shrunk scenario is clean: the shrinker
  // must not have manufactured a real mismatch.
  cfg.inject_bug = false;
  EXPECT_FALSE(check_scenario(tiny, cfg).mismatch.has_value());
}

TEST(FuzzInjectedBug, ReproRoundTripsThroughReplay) {
  FuzzConfig cfg = quick_config();
  cfg.inject_bug = true;
  const Scenario scenario = make_scenario(Family::kPipeline, 5);
  const FuzzVerdict verdict = check_scenario(scenario, cfg);
  ASSERT_TRUE(verdict.mismatch.has_value());

  TempDir dir("replay");
  const std::string path = write_repro(scenario, *verdict.mismatch, dir.path());
  EXPECT_TRUE(fs::exists(path));
  {
    std::ifstream in(path);
    std::string first;
    std::getline(in, first);
    EXPECT_EQ(first.rfind("# fppn-fuzz", 0), 0u) << path;
  }

  // Replay with the bug still injected: same check fires again.
  const ReplayOutcome hot = replay_repro(path, cfg);
  EXPECT_EQ(hot.expected_check, "injected-bug");
  EXPECT_EQ(hot.seed, scenario.seed);
  ASSERT_TRUE(hot.verdict.mismatch.has_value());
  EXPECT_EQ(hot.verdict.mismatch->check, "injected-bug");

  // Replay with the bug fixed (not injected): the repro runs clean.
  cfg.inject_bug = false;
  const ReplayOutcome cold = replay_repro(path, cfg);
  EXPECT_FALSE(cold.verdict.mismatch.has_value());
}

TEST(FuzzInjectedBug, RunFuzzWritesOneReproPerMismatch) {
  TempDir dir("run_repros");
  FuzzRunConfig run;
  run.base_seed = 1;
  run.seeds = 3;
  run.repro_dir = dir.path();
  run.check = quick_config();
  run.check.inject_bug = true;
  const FuzzStats stats = run_fuzz(run);
  EXPECT_EQ(stats.mismatches.size(), 3u);
  ASSERT_EQ(stats.repro_paths.size(), 3u);
  for (const std::string& path : stats.repro_paths) {
    EXPECT_TRUE(fs::exists(path)) << path;
  }
}

TEST(FuzzReplay, MissingFileAndIncompleteWcetsThrow) {
  EXPECT_THROW((void)replay_repro("/nonexistent/repro.fppn", quick_config()),
               std::runtime_error);
  TempDir dir("bad_replay");
  const std::string path = dir.path() + "/no_wcets.fppn";
  {
    std::ofstream out(path);
    out << "process A periodic period=100 deadline=100\n";
  }
  EXPECT_THROW((void)replay_repro(path, quick_config()), std::runtime_error);
}

TEST(FuzzCheck, VerdictGatesAreReported) {
  // A periodic-only scenario has no servers: TA-checked but never
  // trace-checked. A sporadic scenario is trace-checked.
  const FuzzConfig cfg = quick_config();
  const FuzzVerdict periodic = check_scenario(make_scenario(Family::kFanOut, 3), cfg);
  EXPECT_FALSE(periodic.mismatch.has_value());
  EXPECT_GT(periodic.jobs, 0u);
  EXPECT_FALSE(periodic.trace_checked);
  const FuzzVerdict sporadic = check_scenario(make_scenario(Family::kSporadic, 3), cfg);
  EXPECT_FALSE(sporadic.mismatch.has_value());
  EXPECT_TRUE(sporadic.trace_checked);
}

}  // namespace
}  // namespace fppn::gen
