// The FFT streaming application (Fig. 5): network shape, numerical
// correctness against a reference DFT, and the §V-A load figures.
#include "apps/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fppn/semantics.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

using apps::kPi;

using apps::build_fft;
using apps::reference_dft;

std::vector<std::complex<double>> decode_spectrum(const Value& v) {
  const auto& flat = std::get<std::vector<double>>(v);
  std::vector<std::complex<double>> out;
  for (std::size_t i = 0; i + 1 < flat.size(); i += 2) {
    out.emplace_back(flat[i], flat[i + 1]);
  }
  return out;
}

TEST(FftApp, Fig5ShapeFor8Points) {
  const auto app = build_fft(8);
  // generator + 3 stages x 4 butterflies + consumer = 14 processes, the
  // paper's job count per frame.
  EXPECT_EQ(app.net.process_count(), 14u);
  EXPECT_EQ(app.stages, 3);
  ASSERT_EQ(app.butterflies.size(), 3u);
  for (const auto& stage : app.butterflies) {
    EXPECT_EQ(stage.size(), 4u);
  }
  EXPECT_TRUE(app.net.find_process("FFT2_0_0").has_value());
  EXPECT_TRUE(app.net.find_process("FFT2_2_3").has_value());
}

TEST(FftApp, RejectsNonPowerOfTwo) {
  EXPECT_THROW(build_fft(6), std::invalid_argument);
  EXPECT_THROW(build_fft(1), std::invalid_argument);
}

TEST(FftApp, TaskGraphMapsOneToOneOntoNetwork) {
  // "the direction of data flow in FIFO channels coincided with functional
  // priority ... hence the task graph maps one-to-one to the process-
  // network graph": same node count, and one edge per adjacent pair.
  const auto app = build_fft(8);
  const auto derived =
      derive_task_graph(app.net, app.uniform_wcets(Duration::ratio_ms(40, 3)));
  EXPECT_EQ(derived.graph.job_count(), app.net.process_count());
  // Every process contributes exactly one job named "<proc>[1]".
  for (std::size_t i = 0; i < app.net.process_count(); ++i) {
    EXPECT_TRUE(
        derived.graph.find(app.net.process(ProcessId{i}).name + "[1]").has_value());
  }
}

class FftCorrectnessTest : public ::testing::TestWithParam<int> {};

TEST_P(FftCorrectnessTest, MatchesReferenceDft) {
  const int n = GetParam();
  const auto app = build_fft(n);
  std::vector<double> block(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    block[static_cast<std::size_t>(i)] =
        std::sin(0.7 * i) + 0.3 * std::cos(2.1 * i) + 0.1 * i;
  }
  const InputScripts inputs = app.make_inputs({block});
  const auto res =
      run_zero_delay(app.net, InvocationPlan::build(app.net, Time::ms(200)), inputs);
  const auto& samples = res.histories.output_samples.at(app.output);
  ASSERT_EQ(samples.size(), 1u);
  const auto spectrum = decode_spectrum(samples[0].value);
  const auto expected = reference_dft(block);
  ASSERT_EQ(spectrum.size(), expected.size());
  for (std::size_t k = 0; k < spectrum.size(); ++k) {
    EXPECT_NEAR(spectrum[k].real(), expected[k].real(), 1e-9) << "bin " << k;
    EXPECT_NEAR(spectrum[k].imag(), expected[k].imag(), 1e-9) << "bin " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftCorrectnessTest, ::testing::Values(2, 4, 8, 16, 32));

TEST(FftApp, StreamOfFramesProcessedIndependently) {
  const auto app = build_fft(4);
  const std::vector<std::vector<double>> frames = {
      {1, 0, 0, 0}, {0, 1, 0, 0}, {1, 2, 3, 4}};
  const InputScripts inputs = app.make_inputs(frames);
  const auto res =
      run_zero_delay(app.net, InvocationPlan::build(app.net, Time::ms(600)), inputs);
  const auto& samples = res.histories.output_samples.at(app.output);
  ASSERT_EQ(samples.size(), 3u);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const auto spectrum = decode_spectrum(samples[f].value);
    const auto expected = reference_dft(frames[f]);
    for (std::size_t k = 0; k < spectrum.size(); ++k) {
      EXPECT_NEAR(std::abs(spectrum[k] - expected[k]), 0.0, 1e-9)
          << "frame " << f << " bin " << k;
    }
  }
}

TEST(FftApp, LoadMatchesPaperFigure) {
  // §V-A: "execution times of all processes were roughly 14 ms, which
  // resulted in a load 0.93". With C = 40/3 ms: 14 jobs over 200 ms =
  // 14 * (40/3) / 200 = 0.9333.
  const auto app = build_fft(8);
  const auto derived =
      derive_task_graph(app.net, app.uniform_wcets(Duration::ratio_ms(40, 3)));
  const LoadResult load = task_graph_load(derived.graph);
  EXPECT_EQ(load.load, Rational(14, 15));
  EXPECT_NEAR(load.load_value(), 0.933, 0.001);
  EXPECT_EQ(load.min_processors(), 1);
}

TEST(FftApp, OverheadJobPushesLoadPastOne) {
  // §V-A: modeling the 41 ms arrival overhead as an extra job with an
  // edge to the generator yields a load > 1 — explaining the deadline
  // misses of the single-processor mapping.
  const auto app = build_fft(8);
  auto derived =
      derive_task_graph(app.net, app.uniform_wcets(Duration::ratio_ms(40, 3)));
  Job overhead;
  overhead.process = ProcessId{app.net.process_count()};
  overhead.arrival = Time::ms(0);
  overhead.deadline = Time::ms(200);
  overhead.wcet = Duration::ms(41);
  overhead.name = "RT[1]";
  const JobId oid = derived.graph.add_job(overhead);
  derived.graph.add_edge(oid, *derived.graph.find("generator[1]"));
  const LoadResult load = task_graph_load(derived.graph);
  EXPECT_GT(load.load, Rational(1));
  // The maximizing window is [A'_{stage0}, D'_{stage2}): the 12 butterfly
  // jobs squeezed between the overhead-delayed ASAP front and the
  // consumer-tightened ALAP back: 480/397 ~ 1.209 (paper reports ~1.2).
  EXPECT_EQ(load.load, Rational(480, 397));
  EXPECT_NEAR(load.load_value(), 1.2, 0.02);
  EXPECT_EQ(load.min_processors(), 2);
}

TEST(FftApp, GeneratorBitReversalIsSelfInverseThroughPipeline) {
  // An impulse at position j: spectrum is exp(-2*pi*i*j*k/N) — check a
  // couple of bins to pin the wiring (catches bit-reversal mistakes).
  const int n = 8;
  const auto app = build_fft(n);
  std::vector<double> impulse(n, 0.0);
  impulse[3] = 1.0;
  const auto res = run_zero_delay(
      app.net, InvocationPlan::build(app.net, Time::ms(200)),
      app.make_inputs({impulse}));
  const auto spectrum =
      decode_spectrum(res.histories.output_samples.at(app.output)[0].value);
  for (int k = 0; k < n; ++k) {
    const double angle = -2.0 * kPi * 3.0 * k / n;
    EXPECT_NEAR(spectrum[static_cast<std::size_t>(k)].real(), std::cos(angle), 1e-9);
    EXPECT_NEAR(spectrum[static_cast<std::size_t>(k)].imag(), std::sin(angle), 1e-9);
  }
}

}  // namespace
}  // namespace fppn
