// Generative property suite: random FPPNs in the schedulable subclass are
// pushed through the COMPLETE pipeline — build, derive, analyze, schedule,
// run the online policy — and checked against the model's invariants:
//  * derivation: job-count formula, DAG-ness, <J edge direction,
//  * Prop. 3.1: min_processors never undercuts ceil(load),
//  * Def. 3.2: every accepted schedule passes the feasibility checker,
//  * Prop. 4.1: the policy meets deadlines on feasible schedules,
//  * Prop. 2.1: VM histories equal the zero-delay reference, under random
//    sporadic scripts and random actual execution times.
#include <gtest/gtest.h>

#include <random>

#include "runtime/vm_runtime.hpp"
#include "sched/search.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

struct RandomNet {
  Network net;
  WcetMap wcets;
  std::map<ProcessId, SporadicScript> scripts;
};

/// Draws a layered network: 3-8 periodic processes with periods from
/// {100, 200, 400} wired forward by random channels, plus 0-2 sporadic
/// configurators attached to periodic users. WCETs small enough to keep
/// most instances schedulable on <= 4 processors.
RandomNet random_network(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  NetworkBuilder b;
  const std::vector<std::int64_t> periods = {100, 200, 400};
  std::uniform_int_distribution<std::size_t> period_pick(0, periods.size() - 1);
  std::uniform_int_distribution<int> proc_count(3, 8);
  std::uniform_int_distribution<int> spor_count(0, 2);
  std::uniform_int_distribution<std::int64_t> wcet_pick(2, 12);

  RandomNet out;
  const int n = proc_count(rng);
  std::vector<ProcessId> periodic;
  std::vector<Duration> period_of;
  for (int i = 0; i < n; ++i) {
    const Duration period = Duration::ms(periods[period_pick(rng)]);
    // Behavior: accumulate whatever arrives on any input channel, write
    // the sum to every output channel (deterministic, data-dependent).
    const ProcessId p = b.periodic(
        "P" + std::to_string(i), period, period, [] {
          class Acc final : public ProcessBehavior {
           public:
            void on_job(JobContext& ctx) override {
              const ProcessDecl& self = ctx.network().process(ctx.self());
              for (const ChannelId c : self.reads) {
                const Value v = ctx.read(c);
                if (const auto* d = std::get_if<double>(&v)) {
                  acc_ += *d;
                } else if (const auto* i64 = std::get_if<std::int64_t>(&v)) {
                  acc_ += static_cast<double>(*i64);
                }
              }
              acc_ = 0.5 * acc_ + 1.0;
              for (const ChannelId c : self.writes) {
                ctx.write(c, acc_);
              }
            }

           private:
            double acc_ = 0.0;
          };
          return std::make_unique<Acc>();
        });
    periodic.push_back(p);
    period_of.push_back(period);
  }
  // Forward channels i -> j (i < j): ~40% density, alternating kinds.
  std::bernoulli_distribution channel_coin(0.4);
  int channel_id = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (channel_coin(rng)) {
        const std::string name = "c" + std::to_string(channel_id++);
        if ((rng() & 1U) == 0U) {
          b.fifo(name, periodic[static_cast<std::size_t>(i)],
                 periodic[static_cast<std::size_t>(j)]);
        } else {
          b.blackboard(name, periodic[static_cast<std::size_t>(i)],
                       periodic[static_cast<std::size_t>(j)]);
        }
        b.priority(periodic[static_cast<std::size_t>(i)],
                   periodic[static_cast<std::size_t>(j)]);
      }
    }
  }
  // Sporadic configurators.
  const int spors = spor_count(rng);
  for (int s = 0; s < spors; ++s) {
    const std::size_t user = rng() % periodic.size();
    const Duration user_period = period_of[user];
    const Duration spor_period = user_period * Rational(2);
    const Duration deadline = user_period * Rational(3);  // > T_u
    std::uniform_int_distribution<int> burst_pick(1, 2);
    const int burst = burst_pick(rng);
    const ProcessId sp =
        b.sporadic("S" + std::to_string(s), burst, spor_period, deadline,
                   behavior([](JobContext& ctx) {
                     const ProcessDecl& self = ctx.network().process(ctx.self());
                     for (const ChannelId c : self.writes) {
                       ctx.write(c, static_cast<double>(ctx.job_index()));
                     }
                   }));
    b.blackboard("s" + std::to_string(s), sp, periodic[user]);
    // Random priority direction exercises both Fig. 2 window kinds.
    if ((rng() & 1U) == 0U) {
      b.priority(sp, periodic[user]);
    } else {
      b.priority(periodic[user], sp);
    }
  }
  out.net = std::move(b).build();
  for (std::size_t i = 0; i < out.net.process_count(); ++i) {
    out.wcets.emplace(ProcessId{i}, Duration::ms(wcet_pick(rng)));
  }
  return out;
}

class RandomNetworkPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNetworkPipeline, FullPipelineInvariantsHold) {
  const std::uint64_t seed = GetParam();
  RandomNet rn = random_network(seed);
  ASSERT_TRUE(rn.net.in_schedulable_subclass());

  const auto derived = derive_task_graph(rn.net, rn.wcets);
  const TaskGraph& tg = derived.graph;
  ASSERT_TRUE(tg.is_acyclic()) << "seed " << seed;
  for (const auto& [u, v] : tg.precedence().edges()) {
    EXPECT_LT(u.value(), v.value()) << "<J order violated, seed " << seed;
  }
  // Job-count formula.
  for (std::size_t i = 0; i < rn.net.process_count(); ++i) {
    const ProcessId p{i};
    const EventSpec& spec = rn.net.process(p).event;
    const Duration period = spec.kind == EventKind::kSporadic
                                ? derived.servers.at(p).server_period
                                : spec.period;
    EXPECT_EQ(Rational(static_cast<std::int64_t>(tg.jobs_of(p).size())),
              Rational(spec.burst) * (derived.hyperperiod / period))
        << "seed " << seed;
  }

  // Prop. 3.1 lower bound vs the search result.
  const LoadResult load = task_graph_load(tg);
  const MinProcessorsResult mp = min_processors(tg, 6);
  if (mp.processors > 0) {
    EXPECT_GE(mp.processors, load.min_processors()) << "seed " << seed;
    ASSERT_TRUE(mp.attempt.has_value());
    const FeasibilityReport report = mp.attempt->schedule.check_feasibility(tg);
    ASSERT_TRUE(report.feasible()) << report.to_string(tg);

    // Random sporadic scripts over 2 frames (kept within the covered
    // window span), random sub-WCET actual times.
    const std::int64_t frames = 2;
    std::uint64_t salt = seed;
    for (const auto& [p, info] : derived.servers) {
      (void)info;
      const EventSpec& spec = rn.net.process(p).event;
      rn.scripts.emplace(
          p, SporadicScript::random(
                 spec.burst, spec.period,
                 Time() + derived.hyperperiod * Rational(frames - 1), ++salt));
    }
    VmRunOptions opts;
    opts.frames = frames;
    opts.actual_time = [seed, &tg](JobId id, std::int64_t frame) {
      const std::uint64_t mix =
          seed ^ (id.value() * 2654435761ULL) ^ static_cast<std::uint64_t>(frame);
      const Rational fraction(static_cast<std::int64_t>(mix % 100 + 1), 100);
      return tg.job(id).wcet * fraction;
    };
    const RunResult run = run_static_order_vm(rn.net, derived, mp.attempt->schedule,
                                              opts, {}, rn.scripts);
    EXPECT_TRUE(run.met_all_deadlines()) << "Prop. 4.1 violated, seed " << seed;
    const ZeroDelayResult ref =
        zero_delay_reference(rn.net, derived.hyperperiod, frames, {}, rn.scripts);
    EXPECT_TRUE(run.histories.functionally_equal(ref.histories))
        << "Prop. 2.1 violated, seed " << seed << "\n"
        << run.histories.diff(ref.histories, rn.net);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworkPipeline,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace fppn
