// Tests for net::Server — the assembled serving stack (reactor + bounded
// work queue + solver pool) driven over real Unix sockets, with a stub
// handler instead of the engine so every scheduling decision is the
// test's own: deterministic backpressure (a full queue answers the
// overload line immediately, while the occupied solver and the queued
// request both finish), drain semantics (stop() finishes the backlog
// before run() returns), queue-wait measurement, and large responses
// surviving a slow reader end to end.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/listener.hpp"
#include "net/server.hpp"

namespace {

namespace fs = std::filesystem;
using fppn::net::Endpoint;
using fppn::net::Listener;
using fppn::net::Server;
using fppn::net::ServerOptions;
using fppn::net::ServerProtocol;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("fppn_net_server_test_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string read_to_eof(int fd) {
  std::string data;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      data.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;
  }
  return data;
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string roundtrip(const std::string& socket_path, const std::string& request) {
  const int fd = fppn::net::connect_endpoint(Endpoint::unix_socket(socket_path));
  if (fd < 0) {
    return "<connect failed: " + std::string(std::strerror(errno)) + ">";
  }
  write_all(fd, request);
  ::shutdown(fd, SHUT_WR);
  const std::string response = read_to_eof(fd);
  ::close(fd);
  return response;
}

TEST(NetServer, FullQueueAnswersOverloadImmediatelyWhileWorkFinishes) {
  const TempDir dir("overload");
  const std::string socket_path = dir.path() + "/s.sock";

  // One solver, one queue slot, and a handler the test can hold shut:
  // with the solver occupied and the slot taken, every further request
  // must get the overload line *now* — that is the backpressure contract.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> active{0};

  ServerOptions options;
  options.solver_threads = 1;
  options.queue_capacity = 1;
  ServerProtocol protocol;
  protocol.overloaded = [] { return std::string("OVERLOADED\n"); };
  Server server(options, protocol, [&](std::string request, double) {
    ++active;
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    return "ok:" + request + "\n";
  });
  server.add_listener(Listener::listen(Endpoint::unix_socket(socket_path)));
  std::thread server_thread([&] { server.run(); });

  // First request occupies the solver...
  std::string response_a;
  std::thread client_a([&] { response_a = roundtrip(socket_path, "a"); });
  for (int i = 0; i < 500 && active.load() == 0; ++i) {
    ::usleep(10 * 1000);
  }
  ASSERT_EQ(active.load(), 1);

  // ...the second fills the one queue slot...
  std::string response_b;
  std::thread client_b([&] { response_b = roundtrip(socket_path, "b"); });
  for (int i = 0; i < 500 && server.queue_size() == 0; ++i) {
    ::usleep(10 * 1000);
  }
  ASSERT_EQ(server.queue_size(), 1u);

  // ...and every request after that is rejected, synchronously.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(roundtrip(socket_path, "burst-" + std::to_string(i)),
              "OVERLOADED\n");
  }

  // Releasing the handler lets the occupied solver and the queued
  // request complete normally — rejection never cancelled admitted work.
  {
    const std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  client_a.join();
  client_b.join();
  EXPECT_EQ(response_a, "ok:a\n");
  EXPECT_EQ(response_b, "ok:b\n");

  server.stop();
  server_thread.join();
  EXPECT_EQ(server.reactor_counters().requests, 5u);  // 2 served + 3 rejected
}

TEST(NetServer, StopDrainsTheBacklogBeforeReturning) {
  const TempDir dir("drain");
  const std::string socket_path = dir.path() + "/s.sock";

  std::atomic<int> handled{0};
  ServerOptions options;
  options.solver_threads = 1;
  options.queue_capacity = 8;
  Server server(options, ServerProtocol{}, [&](std::string request, double) {
    ++handled;
    ::usleep(20 * 1000);  // keep a real backlog behind the single solver
    return "done:" + request + "\n";
  });
  server.add_listener(Listener::listen(Endpoint::unix_socket(socket_path)));
  std::thread server_thread([&] { server.run(); });

  constexpr int kClients = 3;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      responses[static_cast<std::size_t>(i)] =
          roundtrip(socket_path, std::to_string(i));
    });
  }
  // Stop mid-flight: at least one request is being handled, the rest are
  // queued or about to dispatch. Every admitted request must still be
  // answered — run() returning means drained, not dropped.
  for (int i = 0; i < 500 && handled.load() == 0; ++i) {
    ::usleep(5 * 1000);
  }
  server.stop();
  for (std::thread& t : clients) {
    t.join();
  }
  server_thread.join();

  int answered = 0;
  for (int i = 0; i < kClients; ++i) {
    const std::string& r = responses[static_cast<std::size_t>(i)];
    if (r == "done:" + std::to_string(i) + "\n") {
      ++answered;
    } else {
      // A client that raced the drain (connection still reading when the
      // listeners closed) is dropped with an empty response — never a
      // partial or corrupt one.
      EXPECT_EQ(r, "") << r;
    }
  }
  EXPECT_GE(answered, 1);
  EXPECT_EQ(handled.load(), answered);
}

TEST(NetServer, ReportsNonNegativeQueueWait) {
  const TempDir dir("wait");
  const std::string socket_path = dir.path() + "/s.sock";

  std::atomic<bool> saw_request{false};
  std::atomic<bool> wait_non_negative{false};
  ServerOptions options;
  Server server(options, ServerProtocol{},
                [&](std::string request, double queue_wait_ms) {
                  saw_request = true;
                  wait_non_negative = queue_wait_ms >= 0.0;
                  return "ok:" + request + "\n";
                });
  server.add_listener(Listener::listen(Endpoint::unix_socket(socket_path)));
  std::thread server_thread([&] { server.run(); });

  EXPECT_EQ(roundtrip(socket_path, "ping"), "ok:ping\n");
  server.stop();
  server_thread.join();
  EXPECT_TRUE(saw_request.load());
  EXPECT_TRUE(wait_non_negative.load());
}

TEST(NetServer, OversizedRequestsUseTheProtocolHook) {
  const TempDir dir("oversize");
  const std::string socket_path = dir.path() + "/s.sock";

  std::atomic<std::size_t> reported_bytes{0};
  ServerOptions options;
  options.max_request_bytes = 32;
  ServerProtocol protocol;
  protocol.oversized = [&](std::size_t bytes_seen) {
    reported_bytes = bytes_seen;
    return std::string("TOO-BIG\n");
  };
  Server server(options, protocol,
                [](std::string request, double) { return "ok:" + request + "\n"; });
  server.add_listener(Listener::listen(Endpoint::unix_socket(socket_path)));
  std::thread server_thread([&] { server.run(); });

  EXPECT_EQ(roundtrip(socket_path, std::string(200, 'z')), "TOO-BIG\n");
  EXPECT_GT(reported_bytes.load(), 32u);
  // The cap is per connection; a small request still goes through.
  EXPECT_EQ(roundtrip(socket_path, "small"), "ok:small\n");
  server.stop();
  server_thread.join();
}

TEST(NetServer, LargeResponseSurvivesASlowReader) {
  const TempDir dir("big");
  const std::string socket_path = dir.path() + "/s.sock";

  const std::string payload(2 * 1024 * 1024, 'p');
  ServerOptions options;
  Server server(options, ServerProtocol{},
                [&](std::string, double) { return payload; });
  server.add_listener(Listener::listen(Endpoint::unix_socket(socket_path)));
  std::thread server_thread([&] { server.run(); });

  const int fd = fppn::net::connect_endpoint(Endpoint::unix_socket(socket_path));
  ASSERT_GE(fd, 0);
  write_all(fd, "go");
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      ::usleep(200);  // slower than the reactor can flush
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;
  }
  ::close(fd);
  EXPECT_EQ(response, payload);
  server.stop();
  server_thread.join();
}

}  // namespace
