// Tests for net::Server — the assembled serving stack (reactor + bounded
// work queue + solver pool) driven over real Unix sockets, with a stub
// handler instead of the engine so every scheduling decision is the
// test's own: deterministic backpressure (a full queue answers the
// overload line immediately, while the occupied solver and the queued
// request both finish), drain semantics (stop() finishes the backlog
// before run() returns), queue-wait measurement, queue-deadline shedding
// (stale requests answered without ever reaching the handler), a
// slow-loris client cut by the request deadline while healthy traffic is
// served, and large responses surviving a slow reader end to end.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/listener.hpp"
#include "net/server.hpp"

namespace {

namespace fs = std::filesystem;
using fppn::net::Endpoint;
using fppn::net::Listener;
using fppn::net::RequestInfo;
using fppn::net::Server;
using fppn::net::ServerOptions;
using fppn::net::ServerProtocol;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("fppn_net_server_test_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string read_to_eof(int fd) {
  std::string data;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      data.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;
  }
  return data;
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string roundtrip(const std::string& socket_path, const std::string& request) {
  const int fd = fppn::net::connect_endpoint(Endpoint::unix_socket(socket_path));
  if (fd < 0) {
    return "<connect failed: " + std::string(std::strerror(errno)) + ">";
  }
  write_all(fd, request);
  ::shutdown(fd, SHUT_WR);
  const std::string response = read_to_eof(fd);
  ::close(fd);
  return response;
}

TEST(NetServer, FullQueueAnswersOverloadImmediatelyWhileWorkFinishes) {
  const TempDir dir("overload");
  const std::string socket_path = dir.path() + "/s.sock";

  // One solver, one queue slot, and a handler the test can hold shut:
  // with the solver occupied and the slot taken, every further request
  // must get the overload line *now* — that is the backpressure contract.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> active{0};

  ServerOptions options;
  options.solver_threads = 1;
  options.queue_capacity = 1;
  ServerProtocol protocol;
  protocol.overloaded = [] { return std::string("OVERLOADED\n"); };
  Server server(options, protocol, [&](std::string request, const RequestInfo&) {
    ++active;
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    return "ok:" + request + "\n";
  });
  server.add_listener(Listener::listen(Endpoint::unix_socket(socket_path)));
  std::thread server_thread([&] { server.run(); });

  // First request occupies the solver...
  std::string response_a;
  std::thread client_a([&] { response_a = roundtrip(socket_path, "a"); });
  for (int i = 0; i < 500 && active.load() == 0; ++i) {
    ::usleep(10 * 1000);
  }
  ASSERT_EQ(active.load(), 1);

  // ...the second fills the one queue slot...
  std::string response_b;
  std::thread client_b([&] { response_b = roundtrip(socket_path, "b"); });
  for (int i = 0; i < 500 && server.queue_size() == 0; ++i) {
    ::usleep(10 * 1000);
  }
  ASSERT_EQ(server.queue_size(), 1u);

  // ...and every request after that is rejected, synchronously.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(roundtrip(socket_path, "burst-" + std::to_string(i)),
              "OVERLOADED\n");
  }

  // Releasing the handler lets the occupied solver and the queued
  // request complete normally — rejection never cancelled admitted work.
  {
    const std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  client_a.join();
  client_b.join();
  EXPECT_EQ(response_a, "ok:a\n");
  EXPECT_EQ(response_b, "ok:b\n");

  server.stop();
  server_thread.join();
  EXPECT_EQ(server.reactor_counters().requests, 5u);  // 2 served + 3 rejected
}

TEST(NetServer, StopDrainsTheBacklogBeforeReturning) {
  const TempDir dir("drain");
  const std::string socket_path = dir.path() + "/s.sock";

  std::atomic<int> handled{0};
  ServerOptions options;
  options.solver_threads = 1;
  options.queue_capacity = 8;
  Server server(options, ServerProtocol{}, [&](std::string request, const RequestInfo&) {
    ++handled;
    ::usleep(20 * 1000);  // keep a real backlog behind the single solver
    return "done:" + request + "\n";
  });
  server.add_listener(Listener::listen(Endpoint::unix_socket(socket_path)));
  std::thread server_thread([&] { server.run(); });

  constexpr int kClients = 3;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      responses[static_cast<std::size_t>(i)] =
          roundtrip(socket_path, std::to_string(i));
    });
  }
  // Stop mid-flight: at least one request is being handled, the rest are
  // queued or about to dispatch. Every admitted request must still be
  // answered — run() returning means drained, not dropped.
  for (int i = 0; i < 500 && handled.load() == 0; ++i) {
    ::usleep(5 * 1000);
  }
  server.stop();
  for (std::thread& t : clients) {
    t.join();
  }
  server_thread.join();

  int answered = 0;
  for (int i = 0; i < kClients; ++i) {
    const std::string& r = responses[static_cast<std::size_t>(i)];
    if (r == "done:" + std::to_string(i) + "\n") {
      ++answered;
    } else {
      // A client that raced the drain (connection still reading when the
      // listeners closed) is dropped with an empty response — never a
      // partial or corrupt one.
      EXPECT_EQ(r, "") << r;
    }
  }
  EXPECT_GE(answered, 1);
  EXPECT_EQ(handled.load(), answered);
}

TEST(NetServer, ReportsNonNegativeQueueWait) {
  const TempDir dir("wait");
  const std::string socket_path = dir.path() + "/s.sock";

  std::atomic<bool> saw_request{false};
  std::atomic<bool> wait_non_negative{false};
  ServerOptions options;
  Server server(options, ServerProtocol{},
                [&](std::string request, const RequestInfo& info) {
                  saw_request = true;
                  wait_non_negative = info.queue_wait_ms >= 0.0;
                  return "ok:" + request + "\n";
                });
  server.add_listener(Listener::listen(Endpoint::unix_socket(socket_path)));
  std::thread server_thread([&] { server.run(); });

  EXPECT_EQ(roundtrip(socket_path, "ping"), "ok:ping\n");
  server.stop();
  server_thread.join();
  EXPECT_TRUE(saw_request.load());
  EXPECT_TRUE(wait_non_negative.load());
}

TEST(NetServer, OversizedRequestsUseTheProtocolHook) {
  const TempDir dir("oversize");
  const std::string socket_path = dir.path() + "/s.sock";

  std::atomic<std::size_t> reported_bytes{0};
  ServerOptions options;
  options.max_request_bytes = 32;
  ServerProtocol protocol;
  protocol.oversized = [&](std::size_t bytes_seen) {
    reported_bytes = bytes_seen;
    return std::string("TOO-BIG\n");
  };
  Server server(options, protocol, [](std::string request, const RequestInfo&) {
    return "ok:" + request + "\n";
  });
  server.add_listener(Listener::listen(Endpoint::unix_socket(socket_path)));
  std::thread server_thread([&] { server.run(); });

  EXPECT_EQ(roundtrip(socket_path, std::string(200, 'z')), "TOO-BIG\n");
  EXPECT_GT(reported_bytes.load(), 32u);
  // The cap is per connection; a small request still goes through.
  EXPECT_EQ(roundtrip(socket_path, "small"), "ok:small\n");
  server.stop();
  server_thread.join();
}

TEST(NetServer, QueueDeadlineShedsStaleWorkWithoutSolving) {
  const TempDir dir("shed");
  const std::string socket_path = dir.path() + "/s.sock";

  // One solver held busy for far longer than the queue deadline: every
  // request queued behind it is stale by the time it pops, so it must be
  // answered with the shed line and the handler must never see it —
  // solving work nobody is waiting for anymore burns the solver slot the
  // fresh requests need.
  std::atomic<int> handled{0};
  ServerOptions options;
  options.solver_threads = 1;
  options.queue_capacity = 4;
  options.queue_deadline_ms = 30;
  ServerProtocol protocol;
  protocol.deadline_exceeded = [] { return std::string("SHED\n"); };
  Server server(options, protocol, [&](std::string request, const RequestInfo&) {
    ++handled;
    if (request == "slow") {
      ::usleep(150 * 1000);
    }
    return "ok:" + request + "\n";
  });
  server.add_listener(Listener::listen(Endpoint::unix_socket(socket_path)));
  std::thread server_thread([&] { server.run(); });

  std::string slow_response;
  std::thread slow_client([&] { slow_response = roundtrip(socket_path, "slow"); });
  for (int i = 0; i < 500 && handled.load() == 0; ++i) {
    ::usleep(5 * 1000);
  }
  ASSERT_EQ(handled.load(), 1);

  // These queue up behind the 150 ms solve, so their queue wait blows
  // the 30 ms deadline before they ever pop.
  constexpr int kStale = 3;
  std::vector<std::string> stale(kStale);
  std::vector<std::thread> clients;
  for (int i = 0; i < kStale; ++i) {
    clients.emplace_back([&, i] {
      stale[static_cast<std::size_t>(i)] =
          roundtrip(socket_path, "stale-" + std::to_string(i));
    });
  }
  slow_client.join();
  for (std::thread& t : clients) {
    t.join();
  }
  EXPECT_EQ(slow_response, "ok:slow\n");  // admitted in time: still solved
  for (int i = 0; i < kStale; ++i) {
    EXPECT_EQ(stale[static_cast<std::size_t>(i)], "SHED\n");
  }
  EXPECT_EQ(handled.load(), 1);  // the stale requests never reached the handler

  // Shedding is per request, not a poisoned state: fresh traffic solves.
  EXPECT_EQ(roundtrip(socket_path, "fresh"), "ok:fresh\n");
  server.stop();
  server_thread.join();
}

TEST(NetServer, SlowLorisIsCutWhileHealthyClientsAreServed) {
  const TempDir dir("loris");
  const std::string socket_path = dir.path() + "/s.sock";
  constexpr int kDeadlineMs = 250;
  std::signal(SIGPIPE, SIG_IGN);

  ServerOptions options;
  options.solver_threads = 2;
  options.request_timeout_ms = kDeadlineMs;
  Server server(options, ServerProtocol{},
                [](std::string request, const RequestInfo&) {
                  return "ok:" + request + "\n";
                });
  server.add_listener(Listener::listen(Endpoint::unix_socket(socket_path)));
  std::thread server_thread([&] { server.run(); });

  // The attack: one byte every 25 ms, never completing a request. The
  // acceptance bar is that it is disconnected within 2x the deadline
  // *while* 16 healthy clients are answered normally — the loris must
  // not be able to park itself in the reactor at the healthy traffic's
  // expense.
  std::atomic<bool> loris_closed{false};
  std::atomic<double> loris_lifetime_ms{0.0};
  std::thread loris([&] {
    const int fd = fppn::net::connect_endpoint(Endpoint::unix_socket(socket_path));
    if (fd < 0) {
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
               .count() < 4.0 * kDeadlineMs) {
      if (::write(fd, "x", 1) < 0 && errno != EINTR && errno != EAGAIN) {
        loris_closed = true;
        break;
      }
      pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, 25) > 0) {
        char buf[16];
        if (::read(fd, buf, sizeof(buf)) == 0) {
          loris_closed = true;
          break;
        }
      }
    }
    loris_lifetime_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    ::close(fd);
  });

  constexpr int kClients = 16;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      responses[static_cast<std::size_t>(i)] =
          roundtrip(socket_path, "healthy-" + std::to_string(i));
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  loris.join();

  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(responses[static_cast<std::size_t>(i)],
              "ok:healthy-" + std::to_string(i) + "\n");
  }
  EXPECT_TRUE(loris_closed.load());
  EXPECT_LE(loris_lifetime_ms.load(), 2.0 * kDeadlineMs) << loris_lifetime_ms.load();
  server.stop();
  server_thread.join();
  EXPECT_EQ(server.reactor_counters().request_timeouts, 1u);
  EXPECT_EQ(server.reactor_counters().requests,
            static_cast<std::uint64_t>(kClients));
}

TEST(NetServer, LargeResponseSurvivesASlowReader) {
  const TempDir dir("big");
  const std::string socket_path = dir.path() + "/s.sock";

  const std::string payload(2 * 1024 * 1024, 'p');
  ServerOptions options;
  Server server(options, ServerProtocol{},
                [&](std::string, const RequestInfo&) { return payload; });
  server.add_listener(Listener::listen(Endpoint::unix_socket(socket_path)));
  std::thread server_thread([&] { server.run(); });

  const int fd = fppn::net::connect_endpoint(Endpoint::unix_socket(socket_path));
  ASSERT_GE(fd, 0);
  write_all(fd, "go");
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      ::usleep(200);  // slower than the reactor can flush
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;
  }
  ::close(fd);
  EXPECT_EQ(response, payload);
  server.stop();
  server_thread.join();
}

}  // namespace
