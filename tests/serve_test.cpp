// Golden tests for the fppn_serve daemon: request/response wire format,
// the shared in-memory cache answering a repeated fingerprint with zero
// evaluations, error responses for malformed requests, exit-2 flag
// errors, and the SIGINT drain contract (exit 0, socket unlinked).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

const std::string kFig1 =
    std::string(FPPN_TEST_SOURCE_DIR) + "/../examples/fig1.fppn";

/// Fresh per-test scratch directory under the system temp dir.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("fppn_serve_test_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct CmdResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Runs `fppn_serve <args>` (client mode / flag probing) to completion.
CmdResult run_serve(const std::string& args) {
  static int invocation = 0;
  const TempDir dir("run" + std::to_string(++invocation));
  const fs::path out = fs::path(dir.path()) / "out";
  const fs::path err = fs::path(dir.path()) / "err";
  const std::string command = std::string("'") + FPPN_SERVE_BIN + "' " + args +
                              " > '" + out.string() + "' 2> '" + err.string() +
                              "'";
  const int status = std::system(command.c_str());
  CmdResult result;
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  result.out = slurp(out);
  result.err = slurp(err);
  return result;
}

/// Forks the daemon with stderr captured to `log`. Returns its pid.
pid_t start_daemon(const std::string& socket_path, const std::string& log) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (std::freopen(log.c_str(), "w", stderr) == nullptr) {
      std::_Exit(126);
    }
    ::execl(FPPN_SERVE_BIN, FPPN_SERVE_BIN, "--socket", socket_path.c_str(),
            "--workers", "2", static_cast<char*>(nullptr));
    std::_Exit(127);
  }
  return pid;
}

/// Waits (up to ~5 s) for the daemon to bind its socket.
bool wait_for_socket(const std::string& socket_path) {
  for (int i = 0; i < 100; ++i) {
    if (fs::exists(socket_path)) return true;
    ::usleep(50 * 1000);
  }
  return false;
}

/// First line of `text`, without the newline.
std::string status_line(const std::string& text) {
  const std::size_t nl = text.find('\n');
  return text.substr(0, nl == std::string::npos ? text.size() : nl);
}

TEST(ServeDaemon, AnswersCachesAndDrainsOnSigint) {
  const TempDir dir("lifecycle");
  const std::string socket_path = dir.path() + "/serve.sock";
  const std::string log = dir.path() + "/daemon.log";
  const pid_t daemon = start_daemon(socket_path, log);
  ASSERT_GT(daemon, 0);
  ASSERT_TRUE(wait_for_socket(socket_path)) << slurp(log);

  // First request: a cold solve — every candidate evaluated.
  const CmdResult first =
      run_serve("--socket '" + socket_path + "' --request " + kFig1);
  EXPECT_EQ(first.exit_code, 0) << first.err;
  const std::string cold = status_line(first.out);
  EXPECT_EQ(cold.find("fppn-serve ok fingerprint "), 0u) << cold;
  EXPECT_NE(cold.find(" candidates 6 evaluated 6 cached 0 "), std::string::npos)
      << cold;
  EXPECT_NE(cold.find(" winner alap-edf seed 1 feasible 1"), std::string::npos)
      << cold;
  // The response body carries the winning schedule in the cache-entry
  // wire format.
  EXPECT_NE(first.out.find("\nfppn-schedule v1\n"), std::string::npos)
      << first.out;
  EXPECT_NE(first.out.find("\nend\n"), std::string::npos) << first.out;

  // Second, identical request: answered entirely from the daemon's
  // shared in-memory cache — zero candidates evaluated, same winner,
  // same fingerprint, byte-identical status apart from the hit counts.
  const CmdResult second =
      run_serve("--socket '" + socket_path + "' --request " + kFig1);
  EXPECT_EQ(second.exit_code, 0) << second.err;
  const std::string warm = status_line(second.out);
  EXPECT_NE(warm.find(" candidates 6 evaluated 0 cached 6 "), std::string::npos)
      << warm;
  // fingerprint token (index 2) and winner token must match the cold run.
  std::istringstream cold_ss(cold), warm_ss(warm);
  std::string cold_fp, warm_fp;
  for (int i = 0; i < 3; ++i) {
    cold_ss >> cold_fp;
    warm_ss >> warm_fp;
  }
  EXPECT_EQ(cold_fp, warm_fp);

  // A malformed request gets an error response and a client exit 1 —
  // the daemon survives it.
  const std::string bad = dir.path() + "/bad.fppn";
  {
    std::ofstream out(bad);
    out << "garbage\n";
  }
  const CmdResult broken =
      run_serve("--socket '" + socket_path + "' --request '" + bad + "'");
  EXPECT_EQ(broken.exit_code, 1);
  EXPECT_EQ(status_line(broken.out),
            "fppn-serve error: parse error: line 1: unknown statement "
            "'garbage'");

  // ...and still answers from the cache afterwards.
  const CmdResult third =
      run_serve("--socket '" + socket_path + "' --request " + kFig1);
  EXPECT_EQ(third.exit_code, 0);
  EXPECT_NE(status_line(third.out).find(" evaluated 0 cached 6 "),
            std::string::npos)
      << third.out;

  // SIGINT: drain, unlink the socket, exit 0.
  ASSERT_EQ(::kill(daemon, SIGINT), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(daemon, &status, 0), daemon);
  ASSERT_TRUE(WIFEXITED(status)) << slurp(log);
  EXPECT_EQ(WEXITSTATUS(status), 0) << slurp(log);
  EXPECT_FALSE(fs::exists(socket_path));
  const std::string drained = slurp(log);
  EXPECT_NE(drained.find("fppn_serve: drained; cache served "),
            std::string::npos)
      << drained;
}

TEST(ServeDaemon, ClientAgainstAMissingDaemonFails) {
  const TempDir dir("nodaemon");
  const CmdResult r = run_serve("--socket '" + dir.path() +
                                "/absent.sock' --request " + kFig1);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.err.find("fppn_serve: "), 0u) << r.err;
}

TEST(ServeDaemon, FlagErrorsExitTwo) {
  const CmdResult missing_socket = run_serve("");
  EXPECT_EQ(missing_socket.exit_code, 2);
  EXPECT_EQ(missing_socket.err, "fppn_serve: --socket PATH is required\n");

  const CmdResult bad_workers = run_serve("--socket /tmp/x --workers banana");
  EXPECT_EQ(bad_workers.exit_code, 2);
  EXPECT_EQ(bad_workers.err,
            "fppn_serve: expected an integer for --workers, got 'banana'\n");

  const CmdResult unknown = run_serve("--socket /tmp/x --frobnicate");
  EXPECT_EQ(unknown.exit_code, 2);
  EXPECT_EQ(unknown.err.find("usage: fppn_serve "), 0u) << unknown.err;
}

TEST(ServeDaemon, HelpExitsZero) {
  const CmdResult r = run_serve("--help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out.find("usage: fppn_serve "), 0u) << r.out;
}

}  // namespace
