// The std::thread deployment of the static-order policy (§V, Linux
// runtime). Wall-clock jitter makes timing approximate, so these tests
// assert *functional* correctness exactly and timing loosely.
#include "runtime/thread_runtime.hpp"

#include <gtest/gtest.h>

#include "apps/fig1.hpp"
#include "sched/list_scheduler.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

struct Rig {
  apps::Fig1App app;
  DerivedTaskGraph derived;
  StaticSchedule schedule;
  InputScripts inputs;

  static Rig make(std::int64_t processors) {
    Rig s;
    s.app = apps::build_fig1();
    s.derived = derive_task_graph(s.app.net, s.app.fig3_wcets());
    s.schedule =
        list_schedule(s.derived.graph, PriorityHeuristic::kAlapEdf, processors);
    s.inputs = s.app.make_inputs({1, 2, 3, 4, 5, 6, 7, 8},
                                 {2.0, 3.0, 4.0, 5.0, 6.0, 7.0});
    return s;
  }
};

ThreadRunOptions fast_options(std::int64_t frames) {
  ThreadRunOptions opts;
  opts.frames = frames;
  opts.micros_per_model_ms = 100.0;  // 200 ms frame -> 20 ms wall
  // Sleep far less than the WCET so OS jitter cannot cause misses.
  opts.actual_time = [](JobId, std::int64_t) { return Duration::ms(2); };
  return opts;
}

TEST(ThreadRuntime, FunctionallyEqualToZeroDelayReference) {
  const Rig s = Rig::make(2);
  const RunResult r = run_static_order_threads(s.app.net, s.derived, s.schedule,
                                               fast_options(3), s.inputs, {});
  const ZeroDelayResult ref =
      zero_delay_reference(s.app.net, s.derived.hyperperiod, 3, s.inputs, {});
  EXPECT_TRUE(r.histories.functionally_equal(ref.histories))
      << r.histories.diff(ref.histories, s.app.net);
  EXPECT_EQ(r.jobs_executed, 3u * 8u);
  EXPECT_EQ(r.false_skips, 3u * 2u);
}

TEST(ThreadRuntime, SporadicInjectionMatchesReference) {
  const Rig s = Rig::make(2);
  std::map<ProcessId, SporadicScript> scripts;
  scripts.emplace(s.app.coef_b, SporadicScript({Time::ms(50), Time::ms(390)}, 2,
                                               Duration::ms(700)));
  const RunResult r = run_static_order_threads(s.app.net, s.derived, s.schedule,
                                               fast_options(4), s.inputs, scripts);
  const ZeroDelayResult ref =
      zero_delay_reference(s.app.net, s.derived.hyperperiod, 4, s.inputs, scripts);
  EXPECT_TRUE(r.histories.functionally_equal(ref.histories))
      << r.histories.diff(ref.histories, s.app.net);
  EXPECT_EQ(r.jobs_executed, 4u * 8u + 2u);
  EXPECT_EQ(r.false_skips, 4u * 2u - 2u);
}

TEST(ThreadRuntime, DeterministicAcrossRepetitions) {
  const Rig s = Rig::make(2);
  std::map<ProcessId, SporadicScript> scripts;
  scripts.emplace(s.app.coef_b,
                  SporadicScript({Time::ms(20), Time::ms(150)}, 2, Duration::ms(700)));
  std::optional<std::size_t> fingerprint;
  for (int run = 0; run < 3; ++run) {
    const RunResult r = run_static_order_threads(s.app.net, s.derived, s.schedule,
                                                 fast_options(2), s.inputs, scripts);
    if (!fingerprint.has_value()) {
      fingerprint = r.histories.fingerprint();
    } else {
      EXPECT_EQ(r.histories.fingerprint(), *fingerprint) << "run " << run;
    }
  }
}

TEST(ThreadRuntime, SingleProcessorDeployment) {
  // Multiple process automata mapped to one thread (the paper's static
  // mapping mu_i) still implement the semantics.
  const Rig s = Rig::make(3);  // also exercises an idle processor
  const RunResult r = run_static_order_threads(s.app.net, s.derived, s.schedule,
                                               fast_options(2), s.inputs, {});
  const ZeroDelayResult ref =
      zero_delay_reference(s.app.net, s.derived.hyperperiod, 2, s.inputs, {});
  EXPECT_TRUE(r.histories.functionally_equal(ref.histories));
}

TEST(ThreadRuntime, GenerousDeadlinesAreMet) {
  // With 2 ms model execution inside 200 ms frames and a 10x wall scale,
  // even a loaded CI machine should meet every deadline.
  const Rig s = Rig::make(2);
  ThreadRunOptions opts = fast_options(2);
  opts.micros_per_model_ms = 300.0;
  const RunResult r = run_static_order_threads(s.app.net, s.derived, s.schedule, opts,
                                               s.inputs, {});
  EXPECT_TRUE(r.met_all_deadlines())
      << r.misses.size() << " misses (wall-clock jitter?)";
}

TEST(ThreadRuntime, RejectsBadInput) {
  const Rig s = Rig::make(2);
  ThreadRunOptions opts;
  opts.frames = 0;
  EXPECT_THROW(
      run_static_order_threads(s.app.net, s.derived, s.schedule, opts, {}, {}),
      std::invalid_argument);
  StaticSchedule partial(s.derived.graph.job_count(), 2);
  EXPECT_THROW(run_static_order_threads(s.app.net, s.derived, partial,
                                        fast_options(1), {}, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fppn
