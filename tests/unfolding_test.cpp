// The pipelined-scheduling extension (derivation option `unfolding`):
// footnote 5 of the paper restricts scheduling to one non-pipelined frame
// and truncates deadlines to H; unfolding U > 1 schedules U hyperperiods
// together so deadlines beyond H survive and frames can overlap.
#include <gtest/gtest.h>

#include "apps/fig1.hpp"
#include "graph/algorithms.hpp"
#include "runtime/vm_runtime.hpp"
#include "sched/search.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

/// A two-process network where the producer's deadline extends past its
/// period (d > T is explicitly allowed: "we do not put any restrictions on
/// periods and deadlines"): T = 100, d = 250.
Network deep_pipeline() {
  NetworkBuilder b;
  const ProcessId stage1 = b.periodic("stage1", Duration::ms(100), Duration::ms(250),
                                      no_op_behavior());
  const ProcessId stage2 = b.periodic("stage2", Duration::ms(100), Duration::ms(250),
                                      no_op_behavior());
  b.fifo("q", stage1, stage2);
  b.priority(stage1, stage2);
  return std::move(b).build();
}

TEST(Unfolding, FactorScalesFrameAndJobCount) {
  const auto app = apps::build_fig1();
  DerivationOptions opts;
  opts.unfolding = 3;
  const auto derived = derive_task_graph(app.net, app.fig3_wcets(), opts);
  EXPECT_EQ(derived.hyperperiod, Duration::ms(600));
  EXPECT_EQ(derived.graph.job_count(), 30u);  // 3x the Fig. 3 graph
  // Second-hyperperiod jobs exist and arrive in [200, 400).
  const auto id = derived.graph.find("InputA[2]");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(derived.graph.job(*id).arrival, Time::ms(200));
}

TEST(Unfolding, InvalidFactorRejected) {
  const auto app = apps::build_fig1();
  DerivationOptions opts;
  opts.unfolding = 0;
  EXPECT_THROW(derive_task_graph(app.net, app.fig3_wcets(), opts),
               std::invalid_argument);
}

TEST(Unfolding, NonPipelinedTruncationArtificiallyTightens) {
  // U = 1: the d = 250 deadline is truncated to H = 100, making the
  // 70+70 ms chain infeasible on any processor count (window violation).
  const Network net = deep_pipeline();
  WcetMap wcets;
  wcets.emplace(*net.find_process("stage1"), Duration::ms(70));
  wcets.emplace(*net.find_process("stage2"), Duration::ms(70));
  const auto folded = derive_task_graph(net, wcets);
  EXPECT_FALSE(check_necessary_condition(folded.graph, 8).holds());
  EXPECT_EQ(min_processors(folded.graph, 8).processors, 0);
}

TEST(Unfolding, FpSerializationLimitsPipeliningWithoutBuffering) {
  // The deeper finding behind footnote 5 and the paper's future work
  // ("we plan to support buffering and pipelining"): the §III-A edge rule
  // orders EVERY pair of FP-related jobs, so stage2[k] -> stage1[k+1] is a
  // precedence edge — successive hyperperiods of a producer/consumer pair
  // can never overlap, no matter the unfolding factor or deadline slack.
  // Pipelining requires relaxing the single-slot channel mutual exclusion
  // (i.e. buffering), not just longer frames.
  const Network net = deep_pipeline();
  WcetMap wcets;
  wcets.emplace(*net.find_process("stage1"), Duration::ms(70));
  wcets.emplace(*net.find_process("stage2"), Duration::ms(70));
  DerivationOptions opts;
  opts.unfolding = 5;
  opts.truncate_deadlines = false;  // even with full deadline slack
  const auto unfolded = derive_task_graph(net, wcets, opts);
  EXPECT_EQ(unfolded.graph.job_count(), 10u);
  // The serialization edge exists for every k...
  for (std::int64_t k = 1; k < 5; ++k) {
    const auto s2 = unfolded.graph.find("stage2[" + std::to_string(k) + "]");
    const auto s1 = unfolded.graph.find("stage1[" + std::to_string(k + 1) + "]");
    ASSERT_TRUE(s2.has_value());
    ASSERT_TRUE(s1.has_value());
    const Reachability reach(unfolded.graph.precedence());
    EXPECT_TRUE(reach.reaches(NodeId(s2->value()), NodeId(s1->value())));
  }
  // ... so 140 ms of serialized work per 100 ms period diverges: the
  // necessary condition fails on ANY processor count.
  EXPECT_FALSE(check_necessary_condition(unfolded.graph, 64).holds());
  EXPECT_EQ(min_processors(unfolded.graph, 8).processors, 0);
}

TEST(Unfolding, InteriorServerDeadlinesEscapeTruncation) {
  // At U = 1, CoefB's corrected 500 ms deadline is truncated to H = 200
  // (Fig. 3). At U = 3 only the final subset is clipped by the super-frame
  // edge; interior subsets keep the full correction.
  const auto app = apps::build_fig1();
  DerivationOptions opts;
  opts.unfolding = 3;
  const auto derived = derive_task_graph(app.net, app.fig3_wcets(), opts);
  const auto jobs = derived.graph.jobs_of(app.coef_b);
  ASSERT_EQ(jobs.size(), 6u);
  EXPECT_EQ(derived.graph.job(jobs[0]).deadline, Time::ms(500));   // 0 + 500
  EXPECT_EQ(derived.graph.job(jobs[2]).deadline, Time::ms(600));   // min(600, 700)
  EXPECT_EQ(derived.graph.job(jobs[4]).deadline, Time::ms(600));   // min(600, 900)
  // Reference: the U = 1 derivation clips the very first subset already.
  const auto folded = derive_task_graph(app.net, app.fig3_wcets());
  EXPECT_EQ(folded.graph.job(folded.graph.jobs_of(app.coef_b)[0]).deadline,
            Time::ms(200));
}

TEST(Unfolding, VmRunsUnfoldedFramesCorrectly) {
  // The online policy treats the super-frame as its frame: running U = 2
  // unfolded for 2 frames equals U = 1 for 4 frames functionally.
  const auto app = apps::build_fig1();
  const InputScripts inputs =
      app.make_inputs({1, 2, 3, 4, 5, 6}, {2.0, 3.0});

  DerivationOptions unfold2;
  unfold2.unfolding = 2;
  const auto d2 = derive_task_graph(app.net, app.fig3_wcets(), unfold2);
  const auto a2 = best_schedule(d2.graph, 2);
  ASSERT_TRUE(a2.feasible);
  VmRunOptions r2;
  r2.frames = 2;
  const RunResult run2 =
      run_static_order_vm(app.net, d2, a2.schedule, r2, inputs, {});

  const auto d1 = derive_task_graph(app.net, app.fig3_wcets());
  const auto a1 = best_schedule(d1.graph, 2);
  VmRunOptions r1;
  r1.frames = 4;
  const RunResult run1 =
      run_static_order_vm(app.net, d1, a1.schedule, r1, inputs, {});

  EXPECT_TRUE(run2.histories.functionally_equal(run1.histories))
      << run2.histories.diff(run1.histories, app.net);
  EXPECT_TRUE(run2.met_all_deadlines());
}

TEST(Unfolding, SporadicServersScaleWithSuperFrame) {
  const auto app = apps::build_fig1();
  DerivationOptions opts;
  opts.unfolding = 4;
  const auto derived = derive_task_graph(app.net, app.fig3_wcets(), opts);
  // CoefB: burst 2, server period 200, super-frame 800 -> 8 server jobs in
  // 4 subsets.
  const auto jobs = derived.graph.jobs_of(app.coef_b);
  EXPECT_EQ(jobs.size(), 8u);
  EXPECT_EQ(derived.graph.job(jobs.back()).subset, 4);
}

}  // namespace
}  // namespace fppn
