// The textual FPPN format: parsing, semantic validation, round-tripping,
// and precise error reporting.
#include "io/text_format.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "apps/fft.hpp"
#include "apps/fig1.hpp"
#include "apps/fms.hpp"
#include "gen/scenario.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/fingerprint.hpp"

namespace fppn::io {
namespace {

const char* kSmall = R"(
# comment line
process A periodic period=100 deadline=100 wcet=10
process B periodic period=200 deadline=200 wcet=20   # trailing comment
process S sporadic burst=2 period=500 deadline=600 wcet=5
channel fifo stream A -> B
channel blackboard cfg S -> B
input  in  -> A
output out <- B
priority A > B
priority B > S
)";

TEST(TextFormat, ParsesSmallNetwork) {
  const ParsedNetwork parsed = parse_network_string(kSmall);
  EXPECT_EQ(parsed.net.process_count(), 3u);
  EXPECT_EQ(parsed.net.channel_count(), 4u);
  EXPECT_TRUE(parsed.wcets_complete);
  const ProcessId a = *parsed.net.find_process("A");
  const ProcessId s = *parsed.net.find_process("S");
  EXPECT_EQ(parsed.net.process(a).event.period, Duration::ms(100));
  EXPECT_EQ(parsed.net.process(s).event.kind, EventKind::kSporadic);
  EXPECT_EQ(parsed.net.process(s).event.burst, 2);
  EXPECT_EQ(parsed.wcets.at(a), Duration::ms(10));
  EXPECT_TRUE(parsed.net.in_schedulable_subclass());
}

TEST(TextFormat, RationalDurations) {
  EXPECT_EQ(parse_duration("200"), Duration::ms(200));
  EXPECT_EQ(parse_duration("40/3"), Duration::ratio_ms(40, 3));
  EXPECT_THROW((void)parse_duration("abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_duration("1/0"), std::exception);
  EXPECT_THROW((void)parse_duration("4/"), std::invalid_argument);
}

TEST(TextFormat, RoundTripPreservesStructure) {
  const ParsedNetwork first = parse_network_string(kSmall);
  const std::string emitted = write_network(first.net, first.wcets);
  const ParsedNetwork second = parse_network_string(emitted);
  EXPECT_EQ(second.net.process_count(), first.net.process_count());
  EXPECT_EQ(second.net.channel_count(), first.net.channel_count());
  EXPECT_EQ(second.net.priority_graph().edge_count(),
            first.net.priority_graph().edge_count());
  for (std::size_t i = 0; i < first.net.process_count(); ++i) {
    const ProcessDecl& p1 = first.net.process(ProcessId{i});
    const auto p2 = second.net.find_process(p1.name);
    ASSERT_TRUE(p2.has_value()) << p1.name;
    EXPECT_EQ(second.net.process(*p2).event.period, p1.event.period);
    EXPECT_EQ(second.net.process(*p2).event.deadline, p1.event.deadline);
    EXPECT_EQ(second.net.process(*p2).event.burst, p1.event.burst);
    EXPECT_EQ(second.net.process(*p2).event.kind, p1.event.kind);
  }
  EXPECT_EQ(second.wcets.size(), first.wcets.size());
}

TEST(TextFormat, Fig1FileMatchesBuiltInApp) {
  // The shipped examples/fig1.fppn must derive the same task graph shape
  // as the C++-built network.
  std::ifstream in("examples/fig1.fppn");
  if (!in) {
    in.open("../examples/fig1.fppn");
  }
  if (!in) {
    GTEST_SKIP() << "fig1.fppn not found from test cwd";
  }
  const ParsedNetwork parsed = parse_network(in);
  EXPECT_EQ(parsed.net.process_count(), 7u);
  const auto derived = derive_task_graph(parsed.net, parsed.wcets);
  EXPECT_EQ(derived.graph.job_count(), 10u);
  EXPECT_EQ(derived.hyperperiod, Duration::ms(200));
  // Max-density window [0, 75): InputA, CoefB x2, FilterA[1], FilterB[1].
  EXPECT_EQ(task_graph_load(derived.graph).load, Rational(5, 3));
}

struct BadCase {
  const char* name;
  const char* text;
  std::size_t error_line;
};

class TextFormatErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(TextFormatErrors, ReportsLineNumber) {
  const BadCase& bad = GetParam();
  try {
    (void)parse_network_string(bad.text);
    FAIL() << bad.name << ": expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), bad.error_line) << bad.name << ": " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TextFormatErrors,
    ::testing::Values(
        BadCase{"unknown-statement", "flurb A\n", 1},
        BadCase{"missing-kind", "process A\n", 1},
        BadCase{"bad-kind",
                "process A quasiperiodic period=1 deadline=1\n", 1},
        BadCase{"missing-period", "\nprocess A periodic deadline=1\n", 2},
        BadCase{"bad-kv", "process A periodic period=1 deadline=1 x\n", 1},
        BadCase{"sporadic-needs-burst",
                "process A sporadic period=1 deadline=1\n", 1},
        BadCase{"unknown-process-in-channel",
                "process A periodic period=1 deadline=1\nchannel fifo c A -> B\n",
                2},
        BadCase{"bad-channel-kind",
                "process A periodic period=1 deadline=1\n"
                "process B periodic period=1 deadline=1\n"
                "channel pipe c A -> B\n",
                3},
        BadCase{"bad-arrow", "process A periodic period=1 deadline=1\n"
                             "input x <- A\n",
                2},
        BadCase{"bad-priority", "process A periodic period=1 deadline=1\n"
                                "priority A < A\n",
                2},
        BadCase{"duplicate-process",
                "process A periodic period=1 deadline=1\n"
                "process A periodic period=1 deadline=1\n",
                2},
        BadCase{"zero-period", "process A periodic period=0 deadline=1\n", 1}),
    [](const ::testing::TestParamInfo<BadCase>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(TextFormat, SemanticValidationStillApplies) {
  // Channel without priority: caught by the builder at build() time.
  const char* text =
      "process A periodic period=1 deadline=1\n"
      "process B periodic period=1 deadline=1\n"
      "channel fifo c A -> B\n";
  EXPECT_THROW((void)parse_network_string(text), std::invalid_argument);
}

TEST(TextFormat, BufferedChannelRoundTrip) {
  const char* text =
      "process w periodic period=100 deadline=300\n"
      "process r periodic period=100 deadline=300\n"
      "channel fifo q w -> r capacity=3\n";
  const ParsedNetwork parsed = parse_network_string(text);
  const ChannelId q = *parsed.net.find_channel("q");
  EXPECT_TRUE(parsed.net.channel(q).is_buffered());
  EXPECT_EQ(parsed.net.channel(q).capacity, 3);
  // The implied writer -> reader priority came with the buffered channel.
  EXPECT_TRUE(parsed.net.has_priority(*parsed.net.find_process("w"),
                                      *parsed.net.find_process("r")));
  const ParsedNetwork again = parse_network_string(write_network(parsed.net));
  EXPECT_EQ(again.net.channel(*again.net.find_channel("q")).capacity, 3);
}

TEST(TextFormat, BufferedBlackboardRejected) {
  const char* text =
      "process w periodic period=100 deadline=100\n"
      "process r periodic period=100 deadline=100\n"
      "channel blackboard b w -> r capacity=2\n";
  EXPECT_THROW((void)parse_network_string(text), ParseError);
}

TEST(TextFormat, BadCapacityKeyRejected) {
  const char* text =
      "process w periodic period=100 deadline=100\n"
      "process r periodic period=100 deadline=100\n"
      "channel fifo q w -> r depth=2\n";
  EXPECT_THROW((void)parse_network_string(text), ParseError);
}

/// write -> parse -> re-derive must reproduce the exact task graph: the
/// writer is the wire format of fuzz repros and shard corpora, so "close
/// enough" round-trips are format bugs.
void expect_lossless_roundtrip(const Network& net, const WcetMap& wcets,
                               const std::string& context) {
  const std::string emitted = write_network(net, wcets);
  const ParsedNetwork parsed = parse_network_string(emitted);
  ASSERT_TRUE(parsed.wcets_complete) << context;
  const auto original = derive_task_graph(net, wcets);
  const auto reparsed = derive_task_graph(parsed.net, parsed.wcets);
  EXPECT_EQ(fingerprint(original.graph), fingerprint(reparsed.graph)) << context;
  EXPECT_EQ(original.hyperperiod, reparsed.hyperperiod) << context;
  // A second write of the reparsed network is byte-identical: the format
  // has one canonical rendering per network.
  EXPECT_EQ(write_network(parsed.net, parsed.wcets), emitted) << context;
}

TEST(TextFormat, PaperAppsRoundTripLosslessly) {
  const auto fig1 = apps::build_fig1();
  expect_lossless_roundtrip(fig1.net, fig1.fig3_wcets(), "fig1");
  const auto fft = apps::build_fft();
  expect_lossless_roundtrip(fft.net, fft.uniform_wcets(Duration::ms(10)), "fft");
  const auto fms = apps::build_fms();
  expect_lossless_roundtrip(fms.net, fms.default_wcets(), "fms");
}

TEST(TextFormat, GeneratedScenariosRoundTripLosslessly) {
  // 200 scenarios across all eight families — including fractional
  // periods/WCETs and near-overflow denominators, where a writer that
  // rendered decimals instead of exact rationals would silently corrupt
  // the graph.
  for (const gen::Family family : gen::all_families()) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      const gen::Scenario s = gen::make_scenario(family, seed);
      expect_lossless_roundtrip(s.net, s.wcets, s.name);
    }
  }
}

TEST(TextFormat, WriterEmitsStrictGrammar) {
  // The writer must stay inside the strict grammar the parser enforces:
  // no '+'-prefixed integers, no trailing garbage, newline-terminated.
  for (const gen::Family family : gen::all_families()) {
    const gen::Scenario s = gen::make_scenario(family, 9);
    const std::string emitted = write_network(s.net, s.wcets);
    EXPECT_EQ(emitted.find('+'), std::string::npos) << s.name;
    ASSERT_FALSE(emitted.empty()) << s.name;
    EXPECT_EQ(emitted.back(), '\n') << s.name;
    // Appending garbage must be a parse error, not silently ignored.
    EXPECT_THROW((void)parse_network_string(emitted + "flurb\n"), ParseError)
        << s.name;
  }
}

TEST(TextFormat, AutoRmStatement) {
  const char* text =
      "process fast periodic period=100 deadline=100\n"
      "process slow periodic period=400 deadline=400\n"
      "channel fifo c slow -> fast\n"
      "priority auto-rm\n";
  const ParsedNetwork parsed = parse_network_string(text);
  const ProcessId fast = *parsed.net.find_process("fast");
  const ProcessId slow = *parsed.net.find_process("slow");
  EXPECT_TRUE(parsed.net.has_priority(fast, slow));
  EXPECT_FALSE(parsed.wcets_complete);
}

}  // namespace
}  // namespace fppn::io
