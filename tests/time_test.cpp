#include "rt/time.hpp"

#include <gtest/gtest.h>

namespace fppn {
namespace {

TEST(Time, DefaultIsOrigin) {
  EXPECT_EQ(Time(), Time::ms(0));
}

TEST(Time, AddSubtractDuration) {
  const Time t = Time::ms(100) + Duration::ms(50);
  EXPECT_EQ(t, Time::ms(150));
  EXPECT_EQ(t - Duration::ms(150), Time::ms(0));
}

TEST(Time, DifferenceIsDuration) {
  const Duration d = Time::ms(300) - Time::ms(100);
  EXPECT_EQ(d, Duration::ms(200));
  EXPECT_TRUE((Time::ms(100) - Time::ms(300)).is_negative());
}

TEST(Time, Ordering) {
  EXPECT_LT(Time::ms(1), Time::ms(2));
  EXPECT_GE(Time::ms(2), Time::ms(2));
}

TEST(Duration, RatioConstruction) {
  // The footnote-3 fractional server period: 200/3 ms.
  const Duration d = Duration::ratio_ms(200, 3);
  EXPECT_EQ(d * Rational(3), Duration::ms(200));
}

TEST(Duration, ScaleByRational) {
  EXPECT_EQ(Duration::ms(100) * Rational(3, 2), Duration::ms(150));
  EXPECT_EQ(Duration::ms(100) / Rational(4), Duration::ms(25));
}

TEST(Duration, DivisionOfDurationsIsExactRatio) {
  EXPECT_EQ(Duration::ms(700) / Duration::ms(200), Rational(7, 2));
}

TEST(Duration, LcmIsHyperperiod) {
  EXPECT_EQ(Duration::lcm(Duration::ms(100), Duration::ms(200)), Duration::ms(200));
  EXPECT_EQ(Duration::lcm(Duration::ms(200), Duration::ms(700)), Duration::ms(1400));
}

TEST(Duration, MinMax) {
  EXPECT_EQ(Duration::min(Duration::ms(3), Duration::ms(5)), Duration::ms(3));
  EXPECT_EQ(Duration::max(Duration::ms(3), Duration::ms(5)), Duration::ms(5));
}

TEST(Duration, SignPredicates) {
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_TRUE(Duration::ms(1).is_positive());
  EXPECT_TRUE((-Duration::ms(1)).is_negative());
}

TEST(Duration, Accumulation) {
  Duration total;
  for (int i = 0; i < 14; ++i) {
    total += Duration::ratio_ms(40, 3);  // the FFT WCET
  }
  EXPECT_EQ(total, Duration::ratio_ms(560, 3));
  EXPECT_EQ((total / Duration::ms(200)).to_double(), 560.0 / 600.0);
}

TEST(Time, ToString) {
  EXPECT_EQ(Time::ms(200).to_string(), "200");
  EXPECT_EQ(Duration::ratio_ms(40, 3).to_string(), "40/3");
}

}  // namespace
}  // namespace fppn
