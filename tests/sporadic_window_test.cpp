// Fig. 2: mapping real sporadic invocations to server-job subsets, with
// the boundary decided by the FP direction between p and its user.
#include "runtime/sporadic_window.hpp"

#include <gtest/gtest.h>

namespace fppn {
namespace {

ServerInfo make_info(bool priority_over_user) {
  ServerInfo info;
  info.sporadic = ProcessId{0};
  info.user = ProcessId{1};
  info.burst = 2;
  info.server_period = Duration::ms(200);
  info.corrected_deadline = Duration::ms(500);
  info.priority_over_user = priority_over_user;
  return info;
}

TEST(ServerWindow, RightClosedWhenSporadicHasPriority) {
  // p -> u(p): the job invoked exactly at b is handled in this subset.
  const ServerInfo info = make_info(true);
  const ServerWindow w = server_window(info, Time::ms(400));
  EXPECT_EQ(w.a, Time::ms(200));
  EXPECT_EQ(w.b, Time::ms(400));
  EXPECT_TRUE(w.right_closed);
  EXPECT_FALSE(w.contains(Time::ms(200)));  // left end excluded
  EXPECT_TRUE(w.contains(Time::ms(201)));
  EXPECT_TRUE(w.contains(Time::ms(400)));   // boundary included
  EXPECT_FALSE(w.contains(Time::ms(401)));
}

TEST(ServerWindow, LeftClosedWhenUserHasPriority) {
  // u(p) -> p: the job invoked exactly at b goes to the *next* subset.
  const ServerInfo info = make_info(false);
  const ServerWindow w = server_window(info, Time::ms(400));
  EXPECT_TRUE(w.contains(Time::ms(200)));   // left end included
  EXPECT_FALSE(w.contains(Time::ms(400)));  // boundary excluded
}

TEST(ServerWindow, WindowsTileTheTimeline) {
  // Every instant belongs to exactly one window, for both boundary kinds.
  for (const bool over_user : {true, false}) {
    const ServerInfo info = make_info(over_user);
    const std::vector<Time> probes = {Time::ms(0),   Time::ms(1),   Time::ms(199),
                                      Time::ms(200), Time::ms(201), Time::ms(400),
                                      Time::ms(599), Time::ms(600)};
    for (const Time& t : probes) {
      int owners = 0;
      for (int boundary = 0; boundary <= 5; ++boundary) {
        const ServerWindow w =
            server_window(info, Time::ms(200 * static_cast<std::int64_t>(boundary)));
        owners += w.contains(t) ? 1 : 0;
      }
      EXPECT_EQ(owners, 1) << "t=" << t << " over_user=" << over_user;
    }
  }
}

TEST(SubsetBoundary, FrameAndSubsetOffsets) {
  const ServerInfo info = make_info(true);
  const Duration h = Duration::ms(1000);  // 5 subsets per frame
  EXPECT_EQ(subset_boundary(info, 0, 1, h), Time::ms(0));
  EXPECT_EQ(subset_boundary(info, 0, 3, h), Time::ms(400));
  EXPECT_EQ(subset_boundary(info, 2, 1, h), Time::ms(2000));
  EXPECT_EQ(subset_boundary(info, 1, 5, h), Time::ms(1800));
}

TEST(TthInvocation, PicksTthInsideWindow) {
  const std::vector<Time> inv = {Time::ms(210), Time::ms(250), Time::ms(390),
                                 Time::ms(410)};
  const ServerWindow w{Time::ms(200), Time::ms(400), true};
  EXPECT_EQ(tth_invocation_in(inv, w, 1), Time::ms(210));
  EXPECT_EQ(tth_invocation_in(inv, w, 2), Time::ms(250));
  EXPECT_EQ(tth_invocation_in(inv, w, 3), Time::ms(390));
  EXPECT_EQ(tth_invocation_in(inv, w, 4), std::nullopt);  // 410 outside
  EXPECT_EQ(count_invocations_in(inv, w), 3);
}

TEST(TthInvocation, BoundaryMembershipFollowsClosedness) {
  const std::vector<Time> inv = {Time::ms(400)};
  const ServerWindow closed{Time::ms(200), Time::ms(400), true};
  const ServerWindow open{Time::ms(200), Time::ms(400), false};
  EXPECT_EQ(tth_invocation_in(inv, closed, 1), Time::ms(400));
  EXPECT_EQ(tth_invocation_in(inv, open, 1), std::nullopt);
  // The invocation at exactly b lands in the *next* open window instead.
  const ServerWindow next_open{Time::ms(400), Time::ms(600), false};
  EXPECT_EQ(tth_invocation_in(inv, next_open, 1), Time::ms(400));
}

TEST(TthInvocation, LeftBoundaryMembership) {
  const std::vector<Time> inv = {Time::ms(200)};
  const ServerWindow closed{Time::ms(200), Time::ms(400), true};  // (200, 400]
  const ServerWindow open{Time::ms(200), Time::ms(400), false};   // [200, 400)
  EXPECT_EQ(tth_invocation_in(inv, closed, 1), std::nullopt);
  EXPECT_EQ(tth_invocation_in(inv, open, 1), Time::ms(200));
}

TEST(TthInvocation, EmptyAndDegenerateCases) {
  const ServerWindow w{Time::ms(0), Time::ms(200), true};
  EXPECT_EQ(tth_invocation_in({}, w, 1), std::nullopt);
  EXPECT_EQ(tth_invocation_in({Time::ms(100)}, w, 0), std::nullopt);
  EXPECT_EQ(count_invocations_in({}, w), 0);
}

TEST(TthInvocation, EveryInvocationHandledExactlyOnce) {
  // Simulated frame stream: each invocation must map to exactly one
  // (subset, t) slot across all boundaries — the runtime invariant that
  // makes the online policy lossless.
  const ServerInfo info = make_info(true);
  const std::vector<Time> inv = {Time::ms(0),   Time::ms(10),  Time::ms(200),
                                 Time::ms(350), Time::ms(360), Time::ms(799),
                                 Time::ms(800)};
  int handled = 0;
  for (int boundary = 0; boundary <= 5; ++boundary) {
    const ServerWindow w =
        server_window(info, Time::ms(200 * static_cast<std::int64_t>(boundary)));
    for (int t = 1; t <= info.burst; ++t) {
      if (tth_invocation_in(inv, w, t).has_value()) {
        ++handled;
      }
    }
  }
  EXPECT_EQ(handled, static_cast<int>(inv.size()));
}

}  // namespace
}  // namespace fppn
