#include "sim/gantt.hpp"

#include <gtest/gtest.h>

namespace fppn {
namespace {

TimedTrace sample_trace() {
  TimedTrace t;
  t.add(TraceEvent{TraceEventKind::kFrameStart, 0, ProcessorId(), "frame 0",
                   Time::ms(0), std::nullopt});
  t.add(TraceEvent{TraceEventKind::kOverhead, 0, ProcessorId(), "arrivals",
                   Time::ms(0), Time::ms(41)});
  t.add(TraceEvent{TraceEventKind::kJobRun, 0, ProcessorId(0), "gen[1]", Time::ms(41),
                   Time::ms(55)});
  t.add(TraceEvent{TraceEventKind::kJobRun, 0, ProcessorId(1), "fft[1]", Time::ms(55),
                   Time::ms(69)});
  t.add(TraceEvent{TraceEventKind::kFalseSkip, 0, ProcessorId(0), "cfg[1]",
                   Time::ms(60), std::nullopt});
  t.add(TraceEvent{TraceEventKind::kDeadlineMiss, 0, ProcessorId(1), "fft[1]",
                   Time::ms(69), std::nullopt});
  return t;
}

TEST(TimedTrace, CountsByKind) {
  const TimedTrace t = sample_trace();
  EXPECT_EQ(t.executed_job_count(), 2u);
  EXPECT_EQ(t.false_skip_count(), 1u);
  EXPECT_EQ(t.deadline_miss_count(), 1u);
  EXPECT_EQ(t.of_kind(TraceEventKind::kOverhead).size(), 1u);
  EXPECT_EQ(t.span_end(), Time::ms(69));
}

TEST(TimedTrace, SummaryMentionsEverything) {
  const std::string s = sample_trace().summary();
  EXPECT_NE(s.find("2 jobs executed"), std::string::npos);
  EXPECT_NE(s.find("1 false skips"), std::string::npos);
  EXPECT_NE(s.find("1 deadline miss(es)"), std::string::npos);
}

TEST(Gantt, AsciiHasProcessorAndOverheadRows) {
  const std::string chart = render_gantt(sample_trace(), 2);
  EXPECT_NE(chart.find("M1"), std::string::npos);
  EXPECT_NE(chart.find("M2"), std::string::npos);
  EXPECT_NE(chart.find("RT"), std::string::npos);
  EXPECT_NE(chart.find("gen["), std::string::npos);
  EXPECT_NE(chart.find('!'), std::string::npos);  // miss marker
}

TEST(Gantt, WindowRestriction) {
  GanttOptions opts;
  opts.from = Time::ms(50);
  opts.to = Time::ms(69);
  const std::string chart = render_gantt(sample_trace(), 2, opts);
  EXPECT_NE(chart.find("fft["), std::string::npos);
}

TEST(Gantt, SvgIsWellFormedish) {
  const std::string svg = render_gantt_svg(sample_trace(), 2);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("gen[1]"), std::string::npos);
  EXPECT_NE(svg.find("rect"), std::string::npos);
}

TEST(Gantt, EmptyTraceRendersAxes) {
  const TimedTrace empty;
  const std::string chart = render_gantt(empty, 1);
  EXPECT_NE(chart.find("M1"), std::string::npos);
}

TEST(TraceEventKind, Names) {
  EXPECT_EQ(to_string(TraceEventKind::kJobRun), "job-run");
  EXPECT_EQ(to_string(TraceEventKind::kDeadlineMiss), "deadline-miss");
  EXPECT_EQ(to_string(TraceEventKind::kFrameStart), "frame-start");
}

}  // namespace
}  // namespace fppn
