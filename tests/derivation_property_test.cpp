// Structural properties of task-graph derivation (§III-A) beyond the
// Fig. 3 instance: job-count formula, FP' acyclicity, edge soundness
// (every FP-related or same-process pair ordered), deadline corrections
// and the footnote-3 fractional-server fallback.
#include <gtest/gtest.h>

#include "apps/fig1.hpp"
#include "graph/algorithms.hpp"
#include "apps/fms.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

TEST(Derivation, JobCountFormulaHolds) {
  // Every process is represented by m_p * H / T_p' vertices.
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, Duration::ms(25));
  for (std::size_t i = 0; i < app.net.process_count(); ++i) {
    const ProcessId p{i};
    const EventSpec& spec = app.net.process(p).event;
    const Duration period = spec.kind == EventKind::kSporadic
                                ? derived.servers.at(p).server_period
                                : spec.period;
    const Rational expected =
        Rational(spec.burst) * (derived.hyperperiod / period);
    EXPECT_EQ(Rational(static_cast<std::int64_t>(derived.graph.jobs_of(p).size())),
              expected)
        << app.net.process(p).name;
  }
}

TEST(Derivation, EverySameProcessPairIsOrdered) {
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  const Reachability reach(derived.graph.precedence());
  for (std::size_t i = 0; i < app.net.process_count(); ++i) {
    const auto jobs = derived.graph.jobs_of(ProcessId{i});
    for (std::size_t a = 0; a + 1 < jobs.size(); ++a) {
      EXPECT_TRUE(reach.reaches(NodeId(jobs[a].value()), NodeId(jobs[a + 1].value())))
          << derived.graph.job(jobs[a]).name << " must precede "
          << derived.graph.job(jobs[a + 1]).name;
    }
  }
}

TEST(Derivation, EveryFpRelatedPairIsOrdered) {
  // The defining property of E: Ja <J Jb and pa |><| pb implies a path.
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, Duration::ms(25));
  const Reachability reach(derived.graph.precedence());
  const auto& tg = derived.graph;
  for (std::size_t a = 0; a < tg.job_count(); ++a) {
    for (std::size_t b = a + 1; b < tg.job_count(); ++b) {
      const ProcessId pa = tg.job(JobId(a)).process;
      const ProcessId pb = tg.job(JobId(b)).process;
      const bool related = pa == pb || app.net.priority_related(pa, pb);
      if (related) {
        EXPECT_TRUE(reach.reaches(NodeId(a), NodeId(b)))
            << tg.job(JobId(a)).name << " ... " << tg.job(JobId(b)).name;
      }
    }
  }
}

TEST(Derivation, UnrelatedPairsShareNoEdge) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, Duration::ms(25));
  const auto& tg = derived.graph;
  for (const auto& [u, v] : tg.precedence().edges()) {
    const ProcessId pa = tg.job(JobId(u.value())).process;
    const ProcessId pb = tg.job(JobId(v.value())).process;
    // Note: server FP' adds p' -> u(p), which corresponds to the original
    // sporadic/user pair — still "related" for this check.
    const bool related = pa == pb || app.net.priority_related(pa, pb) ||
                         app.net.user_of(pa) == pb || app.net.user_of(pb) == pa;
    EXPECT_TRUE(related) << tg.job(JobId(u.value())).name << " -> "
                         << tg.job(JobId(v.value())).name;
  }
}

TEST(Derivation, MissingWcetRejected) {
  const auto app = apps::build_fig1();
  WcetMap partial = app.fig3_wcets();
  partial.erase(app.coef_b);
  EXPECT_THROW(derive_task_graph(app.net, partial), std::invalid_argument);
}

TEST(Derivation, NonPositiveWcetRejected) {
  const auto app = apps::build_fig1();
  WcetMap bad = app.fig3_wcets();
  bad[app.norm_a] = Duration::zero();
  EXPECT_THROW(derive_task_graph(app.net, bad), std::invalid_argument);
}

TEST(Derivation, OutsideSubclassRejected) {
  NetworkBuilder b;
  b.sporadic("lonely", 1, Duration::ms(100), Duration::ms(100), no_op_behavior());
  const Network net = std::move(b).build();
  EXPECT_THROW(derive_task_graph(net, Duration::ms(5)), std::invalid_argument);
}

TEST(Derivation, Footnote3FractionalServerPeriod) {
  // d_p <= T_u: the server period becomes T_u/q with d_p > T_u/q.
  NetworkBuilder b;
  const ProcessId user =
      b.periodic("user", Duration::ms(200), Duration::ms(200), no_op_behavior());
  // Sporadic: period 400, deadline 90 <= T_u = 200; q = floor(200/90)+1 = 3.
  const ProcessId spor =
      b.sporadic("spor", 1, Duration::ms(400), Duration::ms(90), no_op_behavior());
  b.blackboard("cfg", spor, user);
  b.priority(user, spor);
  const Network net = std::move(b).build();
  const auto derived = derive_task_graph(net, Duration::ms(5));
  const ServerInfo& info = derived.servers.at(spor);
  EXPECT_EQ(info.server_period, Duration::ratio_ms(200, 3));
  EXPECT_EQ(info.corrected_deadline, Duration::ms(90) - Duration::ratio_ms(200, 3));
  EXPECT_TRUE(info.corrected_deadline.is_positive());
  EXPECT_FALSE(info.priority_over_user);  // user -> spor here
  // Hyperperiod must absorb the fractional period: lcm(200, 200/3) = 200.
  EXPECT_EQ(derived.hyperperiod, Duration::ms(200));
  // Server jobs: m * H / T' = 1 * 200 / (200/3) = 3.
  EXPECT_EQ(derived.graph.jobs_of(spor).size(), 3u);
}

TEST(Derivation, ServerDeadlineCorrectionIsConservative) {
  // D_server = A + d_p - T' <= tau + d_p for any real invocation tau in
  // the window (A - T', A]: meeting the server deadline implies meeting
  // the real one.
  const auto app = apps::build_fig1();
  DerivationOptions opts;
  opts.truncate_deadlines = false;
  const auto derived = derive_task_graph(app.net, app.fig3_wcets(), opts);
  const ServerInfo& info = derived.servers.at(app.coef_b);
  for (const JobId id : derived.graph.jobs_of(app.coef_b)) {
    const Job& j = derived.graph.job(id);
    const Time earliest_real_invocation = j.arrival - info.server_period;
    const Time real_deadline =
        earliest_real_invocation + app.net.process(app.coef_b).event.deadline;
    EXPECT_LE(j.deadline, real_deadline) << j.name;
  }
}

TEST(Derivation, TransitiveReductionOptional) {
  const auto app = apps::build_fig1();
  DerivationOptions opts;
  opts.transitive_reduce = false;
  const auto raw = derive_task_graph(app.net, app.fig3_wcets(), opts);
  const auto reduced = derive_task_graph(app.net, app.fig3_wcets());
  EXPECT_GT(raw.graph.edge_count(), reduced.graph.edge_count());
  EXPECT_EQ(raw.edges_removed, 0u);
  EXPECT_GE(reduced.edges_removed, 1u);
}

TEST(Derivation, UniformWcetOverload) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, Duration::ms(10));
  for (const Job& j : derived.graph.jobs()) {
    EXPECT_EQ(j.wcet, Duration::ms(10));
  }
}

}  // namespace
}  // namespace fppn
