// The Fig. 1 example network: structure and signal-processing behavior.
#include "apps/fig1.hpp"

#include <gtest/gtest.h>

#include "fppn/semantics.hpp"

namespace fppn {
namespace {

using apps::build_fig1;

TEST(Fig1, StructureMatchesFigure) {
  const auto app = build_fig1();
  EXPECT_EQ(app.net.process_count(), 7u);
  EXPECT_EQ(app.net.process(app.input_a).event.period, Duration::ms(200));
  EXPECT_EQ(app.net.process(app.filter_a).event.period, Duration::ms(100));
  EXPECT_EQ(app.net.process(app.output_b).event.period, Duration::ms(100));
  const EventSpec& coef = app.net.process(app.coef_b).event;
  EXPECT_EQ(coef.kind, EventKind::kSporadic);
  EXPECT_EQ(coef.burst, 2);
  EXPECT_EQ(coef.period, Duration::ms(700));
}

TEST(Fig1, PrioritiesAsDrawn) {
  const auto app = build_fig1();
  EXPECT_TRUE(app.net.has_priority(app.input_a, app.filter_a));
  EXPECT_TRUE(app.net.has_priority(app.input_a, app.filter_b));
  EXPECT_TRUE(app.net.has_priority(app.input_a, app.norm_a));
  EXPECT_TRUE(app.net.has_priority(app.filter_a, app.norm_a));
  EXPECT_TRUE(app.net.has_priority(app.norm_a, app.output_a));
  EXPECT_TRUE(app.net.has_priority(app.filter_b, app.output_b));
  EXPECT_TRUE(app.net.has_priority(app.coef_b, app.filter_b));
}

TEST(Fig1, SchedulableSubclassWithFilterBUser) {
  const auto app = build_fig1();
  EXPECT_TRUE(app.net.in_schedulable_subclass());
  EXPECT_EQ(app.net.user_of(app.coef_b), app.filter_b);
}

TEST(Fig1, FeedbackLoopMakesNetworkCyclicButFpAcyclic) {
  const auto app = build_fig1();
  // Channel graph has the NormA -> FilterA feedback; FP stays a DAG
  // (guaranteed by build()); check the feedback channel exists.
  EXPECT_TRUE(app.net.find_channel("fbA").has_value());
  const ChannelDecl& fb = app.net.channel(*app.net.find_channel("fbA"));
  EXPECT_EQ(fb.writer, app.norm_a);
  EXPECT_EQ(fb.reader, app.filter_a);
}

TEST(Fig1, SignalPipelineProducesOutputs) {
  const auto app = build_fig1();
  const InputScripts inputs = app.make_inputs({10.0, -4.0, 2.0}, {0.5});
  std::map<ProcessId, SporadicScript> scripts;
  scripts.emplace(app.coef_b, SporadicScript({Time::ms(50)}, 2, Duration::ms(700)));
  const auto res = run_zero_delay(
      app.net, InvocationPlan::build(app.net, Time::ms(600), scripts), inputs);
  const auto& out1 = res.histories.output_samples.at(app.out1);
  const auto& out2 = res.histories.output_samples.at(app.out2);
  EXPECT_EQ(out1.size(), 3u);  // OutputA at 0, 200, 400
  EXPECT_EQ(out2.size(), 6u);  // OutputB at 0..500 step 100
  // First OutputA sample: InputA(10) -> FilterA acc=10 gain 1 -> NormA
  // 10/11.
  EXPECT_EQ(out1[0].value, Value{10.0 / 11.0});
}

TEST(Fig1, CoefficientChangesFilterBOutput) {
  const auto app = build_fig1();
  const InputScripts inputs = app.make_inputs({1.0, 1.0, 1.0, 1.0}, {3.0});
  // Coefficient commanded at t=250: FilterB k=1 (t=0) uses default 1,
  // FilterB k=2 (t=200) still default, FilterB k=3 (t=400) uses 3.
  std::map<ProcessId, SporadicScript> scripts;
  scripts.emplace(app.coef_b, SporadicScript({Time::ms(250)}, 2, Duration::ms(700)));
  const auto res = run_zero_delay(
      app.net, InvocationPlan::build(app.net, Time::ms(800), scripts), inputs);
  const ChannelId fb_out = *app.net.find_channel("fB_outB");
  const auto& writes = res.histories.channel_writes.at(fb_out);
  ASSERT_EQ(writes.size(), 4u);
  EXPECT_EQ(writes[0], Value{1.0});
  EXPECT_EQ(writes[1], Value{1.0});
  EXPECT_EQ(writes[2], Value{3.0});
  EXPECT_EQ(writes[3], Value{3.0});
}

TEST(Fig1, OutputBMixesBothPaths) {
  const auto app = build_fig1();
  const InputScripts inputs = app.make_inputs({8.0}, {});
  const auto res =
      run_zero_delay(app.net, InvocationPlan::build(app.net, Time::ms(100)), inputs);
  // At t=0: FilterB wrote 8, FilterA wrote acc=8 (gain 1) to mixA.
  // OutputB = 8 + 0.25*8 = 10.
  const auto& out2 = res.histories.output_samples.at(app.out2);
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(out2[0].value, Value{10.0});
}

TEST(Fig1, FilterADecaysBetweenSamples) {
  const auto app = build_fig1();
  const InputScripts inputs = app.make_inputs({4.0}, {});
  const auto res =
      run_zero_delay(app.net, InvocationPlan::build(app.net, Time::ms(200)), inputs);
  const ChannelId mix = *app.net.find_channel("mixA");
  const auto& writes = res.histories.channel_writes.at(mix);
  ASSERT_EQ(writes.size(), 2u);  // FilterA at 0 and 100
  EXPECT_EQ(writes[0], Value{4.0});
  // Second job: no new input, acc = 2.0; gain from NormA = 1/(1+4) = 0.2.
  EXPECT_EQ(writes[1], Value{2.0 * 0.2});
}

TEST(Fig1, Fig3WcetsAreUniform25) {
  const auto app = build_fig1();
  const WcetMap wcets = app.fig3_wcets();
  EXPECT_EQ(wcets.size(), 7u);
  for (const auto& [p, c] : wcets) {
    (void)p;
    EXPECT_EQ(c, Duration::ms(25));
  }
}

}  // namespace
}  // namespace fppn
