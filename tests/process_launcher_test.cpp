// Process shard launcher: every failed worker is reported in one error
// (not just the last one), successes stay quiet, signal deaths are named
// as such, and a failed shard is retried exactly once before it counts.
#include "sched/process_launcher.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

namespace fppn {
namespace {

namespace fs = std::filesystem;

sched::ShardPlan plan_of(int shards) {
  sched::ShardPlan plan;
  plan.shards = shards;
  return plan;
}

/// /bin/sh worker that exits with a per-shard status.
sched::ShardCommandBuilder exiting_with(std::vector<int> codes) {
  return [codes](int shard) -> std::vector<std::string> {
    return {"/bin/sh", "-c", "exit " + std::to_string(codes[static_cast<std::size_t>(shard)])};
  };
}

TEST(ProcessShardLauncher, AllWorkersSucceeding) {
  const sched::ShardLauncher launcher =
      sched::process_shard_launcher(exiting_with({0, 0, 0}));
  EXPECT_NO_THROW(launcher(plan_of(3)));
}

TEST(ProcessShardLauncher, ReportsEveryFailedShardNotJustTheLast) {
  // Shards 0 and 2 die with distinct statuses while shard 1 succeeds: the
  // single error must name both failures — reporting only the last one
  // (the pre-fix behavior) hides real failures behind whichever worker
  // happened to be reaped last.
  const sched::ShardLauncher launcher =
      sched::process_shard_launcher(exiting_with({3, 0, 7}));
  try {
    launcher(plan_of(3));
    FAIL() << "expected the launcher to throw";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("shard worker 0 failed (exit status 3)"), std::string::npos)
        << message;
    EXPECT_NE(message.find("shard worker 2 failed (exit status 7)"), std::string::npos)
        << message;
    EXPECT_EQ(message.find("shard worker 1"), std::string::npos) << message;
  }
}

TEST(ProcessShardLauncher, ReportsSignalDeaths) {
  const sched::ShardLauncher launcher = sched::process_shard_launcher(
      [](int shard) -> std::vector<std::string> {
        if (shard == 0) {
          return {"/bin/sh", "-c", "kill -KILL $$"};
        }
        return {"/bin/sh", "-c", "exit 0"};
      });
  try {
    launcher(plan_of(2));
    FAIL() << "expected the launcher to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("killed by signal"), std::string::npos)
        << e.what();
  }
}

TEST(ProcessShardLauncher, TransientFailureIsRetriedAndSucceeds) {
  // A shard that fails once and succeeds on the rerun (an OOM kill, fork
  // pressure, a node blip) must not fail the whole search: the launcher
  // retries it once with a fresh fork/exec of the same command.
  const fs::path marker = fs::temp_directory_path() /
                          ("fppn_launcher_retry_" + std::to_string(::getpid()));
  fs::remove(marker);
  const sched::ShardLauncher launcher = sched::process_shard_launcher(
      [marker](int shard) -> std::vector<std::string> {
        if (shard == 0) {
          // First run: create the marker and fail. Second run: marker
          // exists, succeed.
          return {"/bin/sh", "-c",
                  "if [ -e '" + marker.string() + "' ]; then exit 0; "
                  "else : > '" + marker.string() + "'; exit 9; fi"};
        }
        return {"/bin/sh", "-c", "exit 0"};
      });
  EXPECT_NO_THROW(launcher(plan_of(2)));
  // The first attempt really did fail (the marker was left behind).
  EXPECT_TRUE(fs::exists(marker));
  fs::remove(marker);
}

TEST(ProcessShardLauncher, RetryReRunsOnlyTheFailedShards) {
  // Deterministic failures are attempted exactly twice; healthy shards
  // run exactly once (a retry storm re-running *everything* would double
  // the cost of large sharded runs on one bad worker).
  auto calls = std::make_shared<std::vector<int>>(3, 0);
  const sched::ShardLauncher launcher = sched::process_shard_launcher(
      [calls](int shard) -> std::vector<std::string> {
        ++(*calls)[static_cast<std::size_t>(shard)];
        return {"/bin/sh", "-c", shard == 1 ? "exit 5" : "exit 0"};
      });
  try {
    launcher(plan_of(3));
    FAIL() << "expected the launcher to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("shard worker 1 failed (exit status 5)"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ((*calls)[0], 1);
  EXPECT_EQ((*calls)[1], 2);
  EXPECT_EQ((*calls)[2], 1);
}

TEST(ProcessShardLauncher, ExecFailureSurfacesAsExit127) {
  const sched::ShardLauncher launcher = sched::process_shard_launcher(
      [](int) -> std::vector<std::string> {
        return {"/nonexistent-binary-fppn-test"};
      });
  try {
    launcher(plan_of(1));
    FAIL() << "expected the launcher to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("exit status 127"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace fppn
