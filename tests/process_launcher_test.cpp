// Process shard launcher: every failed worker is reported in one error
// (not just the last one), successes stay quiet, signal deaths are named
// as such, and a failed shard is retried exactly once before it counts.
// The LaunchPolicy failover tests extend that: a shard that fails twice
// recovers on its third attempt under max_attempts = 3, the on_retry hook
// observes every retry, and — the determinism contract — a sharded solve
// whose workers are KILLed twice per shard still merges the bit-identical
// winner of the undisturbed run, because every retry re-executes the same
// deterministic plan slice.
#include "sched/process_launcher.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"

namespace fppn {
namespace {

namespace fs = std::filesystem;

sched::ShardPlan plan_of(int shards) {
  sched::ShardPlan plan;
  plan.shards = shards;
  return plan;
}

/// /bin/sh worker that exits with a per-shard status.
sched::ShardCommandBuilder exiting_with(std::vector<int> codes) {
  return [codes](int shard) -> std::vector<std::string> {
    return {"/bin/sh", "-c", "exit " + std::to_string(codes[static_cast<std::size_t>(shard)])};
  };
}

TEST(ProcessShardLauncher, AllWorkersSucceeding) {
  const sched::ShardLauncher launcher =
      sched::process_shard_launcher(exiting_with({0, 0, 0}));
  EXPECT_NO_THROW(launcher(plan_of(3)));
}

TEST(ProcessShardLauncher, ReportsEveryFailedShardNotJustTheLast) {
  // Shards 0 and 2 die with distinct statuses while shard 1 succeeds: the
  // single error must name both failures — reporting only the last one
  // (the pre-fix behavior) hides real failures behind whichever worker
  // happened to be reaped last.
  const sched::ShardLauncher launcher =
      sched::process_shard_launcher(exiting_with({3, 0, 7}));
  try {
    launcher(plan_of(3));
    FAIL() << "expected the launcher to throw";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("shard worker 0 failed (exit status 3)"), std::string::npos)
        << message;
    EXPECT_NE(message.find("shard worker 2 failed (exit status 7)"), std::string::npos)
        << message;
    EXPECT_EQ(message.find("shard worker 1"), std::string::npos) << message;
  }
}

TEST(ProcessShardLauncher, ReportsSignalDeaths) {
  const sched::ShardLauncher launcher = sched::process_shard_launcher(
      [](int shard) -> std::vector<std::string> {
        if (shard == 0) {
          return {"/bin/sh", "-c", "kill -KILL $$"};
        }
        return {"/bin/sh", "-c", "exit 0"};
      });
  try {
    launcher(plan_of(2));
    FAIL() << "expected the launcher to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("killed by signal"), std::string::npos)
        << e.what();
  }
}

TEST(ProcessShardLauncher, TransientFailureIsRetriedAndSucceeds) {
  // A shard that fails once and succeeds on the rerun (an OOM kill, fork
  // pressure, a node blip) must not fail the whole search: the launcher
  // retries it once with a fresh fork/exec of the same command.
  const fs::path marker = fs::temp_directory_path() /
                          ("fppn_launcher_retry_" + std::to_string(::getpid()));
  fs::remove(marker);
  const sched::ShardLauncher launcher = sched::process_shard_launcher(
      [marker](int shard) -> std::vector<std::string> {
        if (shard == 0) {
          // First run: create the marker and fail. Second run: marker
          // exists, succeed.
          return {"/bin/sh", "-c",
                  "if [ -e '" + marker.string() + "' ]; then exit 0; "
                  "else : > '" + marker.string() + "'; exit 9; fi"};
        }
        return {"/bin/sh", "-c", "exit 0"};
      });
  EXPECT_NO_THROW(launcher(plan_of(2)));
  // The first attempt really did fail (the marker was left behind).
  EXPECT_TRUE(fs::exists(marker));
  fs::remove(marker);
}

TEST(ProcessShardLauncher, RetryReRunsOnlyTheFailedShards) {
  // Deterministic failures are attempted exactly twice; healthy shards
  // run exactly once (a retry storm re-running *everything* would double
  // the cost of large sharded runs on one bad worker).
  auto calls = std::make_shared<std::vector<int>>(3, 0);
  const sched::ShardLauncher launcher = sched::process_shard_launcher(
      [calls](int shard) -> std::vector<std::string> {
        ++(*calls)[static_cast<std::size_t>(shard)];
        return {"/bin/sh", "-c", shard == 1 ? "exit 5" : "exit 0"};
      });
  try {
    launcher(plan_of(3));
    FAIL() << "expected the launcher to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("shard worker 1 failed (exit status 5)"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ((*calls)[0], 1);
  EXPECT_EQ((*calls)[1], 2);
  EXPECT_EQ((*calls)[2], 1);
}

TEST(ProcessShardLauncher, FailsTwiceThenRecoversUnderMaxAttemptsThree) {
  // Two consecutive failures within a three-attempt budget must recover;
  // the on_retry hook sees both retries with the failure they follow.
  const fs::path counter = fs::temp_directory_path() /
                           ("fppn_launcher_twice_" + std::to_string(::getpid()));
  fs::remove(counter);
  auto retries = std::make_shared<std::vector<std::string>>();
  sched::LaunchPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_initial_ms = 1;  // keep the test fast; growth is tested below
  policy.on_retry = [retries](int shard, int attempt, const std::string& failure) {
    retries->push_back("shard " + std::to_string(shard) + " attempt " +
                       std::to_string(attempt) + ": " + failure);
  };
  const sched::ShardLauncher launcher = sched::process_shard_launcher(
      [counter](int shard) -> std::vector<std::string> {
        if (shard == 0) {
          // Attempts 1 and 2 bump the counter and die; attempt 3 succeeds.
          return {"/bin/sh", "-c",
                  "n=$(cat '" + counter.string() + "' 2>/dev/null || echo 0); "
                  "if [ \"$n\" -lt 2 ]; then echo $((n+1)) > '" +
                      counter.string() + "'; exit 6; fi; exit 0"};
        }
        return {"/bin/sh", "-c", "exit 0"};
      },
      policy);
  EXPECT_NO_THROW(launcher(plan_of(2)));
  std::ifstream in(counter);
  int failures = 0;
  in >> failures;
  EXPECT_EQ(failures, 2);  // both early attempts really ran and died
  ASSERT_EQ(retries->size(), 2u);
  EXPECT_EQ((*retries)[0], "shard 0 attempt 2: shard worker 0 failed (exit status 6)");
  EXPECT_EQ((*retries)[1], "shard 0 attempt 3: shard worker 0 failed (exit status 6)");
  fs::remove(counter);
}

TEST(ProcessShardLauncher, ExhaustedAttemptsReportTheLastFailure) {
  sched::LaunchPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_initial_ms = 0;  // no backoff: the knob's off-switch
  const sched::ShardLauncher launcher =
      sched::process_shard_launcher(exiting_with({4}), policy);
  try {
    launcher(plan_of(1));
    FAIL() << "expected the launcher to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("shard worker 0 failed (exit status 4)"),
              std::string::npos)
        << e.what();
  }
}

TEST(ProcessShardLauncher, BackoffGrowsExponentiallyAndIsBounded) {
  sched::LaunchPolicy policy;
  policy.backoff_initial_ms = 10;
  policy.backoff_max_ms = 35;
  // min(10 << (k - 2), 35): 10, 20, 35, 35, ... — bounded growth, no
  // unbounded sleep even for deep retry budgets.
  const auto sleep_for = [&policy](int attempt) {
    long long ms = policy.backoff_initial_ms;
    for (int k = 2; k < attempt && ms < policy.backoff_max_ms; ++k) {
      ms *= 2;
    }
    return ms > policy.backoff_max_ms ? policy.backoff_max_ms : ms;
  };
  EXPECT_EQ(sleep_for(2), 10);
  EXPECT_EQ(sleep_for(3), 20);
  EXPECT_EQ(sleep_for(4), 35);
  EXPECT_EQ(sleep_for(7), 35);
}

TEST(ProcessShardLauncher, WorkerKillsStillMergeTheBitIdenticalWinner) {
  // The acceptance test of the failover design: a sharded solve through
  // REAL `fppn_tool search-worker` processes, with shards 0 and 2 KILLed
  // on their first two attempts, must merge exactly the winner of the
  // undisturbed unsharded solve — a retry re-runs the same deterministic
  // plan slice, so worker deaths can delay the answer but never change it.
  const std::string fig1 =
      std::string(FPPN_TEST_SOURCE_DIR) + "/../examples/fig1.fppn";
  const fs::path scratch =
      fs::temp_directory_path() /
      ("fppn_launcher_failover_" + std::to_string(::getpid()));
  fs::remove_all(scratch);
  fs::create_directories(scratch);

  engine::SolveRequest request;
  request.network_path = fig1;
  request.config.processors = 2;
  request.config.seed = 1;
  request.config.workers = 2;

  engine::Engine baseline_engine;
  const engine::SolveReport baseline = baseline_engine.solve(request);

  constexpr int kShards = 3;
  engine::SolveRequest sharded = request;
  sharded.config.shards = kShards;
  sharded.config.shard_dir = (scratch / "shards").string();
  sharded.make_shard_launcher = [&](const std::string& shard_dir) {
    sched::LaunchPolicy policy;
    policy.max_attempts = 3;
    policy.backoff_initial_ms = 1;
    return sched::process_shard_launcher(
        [fig1, shard_dir, scratch](int shard) -> std::vector<std::string> {
          const std::string worker =
              std::string("'") + FPPN_TOOL_BIN + "' search-worker '" + fig1 +
              "' -m 2 --shards " + std::to_string(kShards) + " --shard-index " +
              std::to_string(shard) + " --shard-dir '" + shard_dir +
              "' --seed 1 --unfold 1 --jobs 2";
          if (shard == 1) {
            return {"/bin/sh", "-c", "exec " + worker};
          }
          // Shards 0 and 2: die by SIGKILL on the first two attempts,
          // exec the real worker on the third.
          const std::string counter =
              (scratch / ("kills." + std::to_string(shard))).string();
          return {"/bin/sh", "-c",
                  "n=$(cat '" + counter + "' 2>/dev/null || echo 0); "
                  "if [ \"$n\" -lt 2 ]; then echo $((n+1)) > '" + counter +
                      "'; kill -KILL $$; fi; exec " + worker};
        },
        policy);
  };

  engine::Engine sharded_engine;
  const engine::SolveReport chaotic = sharded_engine.solve(sharded);

  // Both kill counters ran their full course: 2 deaths each, 4 total.
  for (const int shard : {0, 2}) {
    std::ifstream in(scratch / ("kills." + std::to_string(shard)));
    int kills = 0;
    in >> kills;
    EXPECT_EQ(kills, 2) << "shard " << shard;
  }

  // The merged winner is bit-identical to the undisturbed solve.
  EXPECT_TRUE(chaotic.sharded);
  EXPECT_EQ(chaotic.search.best.detail, baseline.search.best.detail);
  EXPECT_EQ(chaotic.search.best.strategy, baseline.search.best.strategy);
  EXPECT_EQ(chaotic.search.best.makespan, baseline.search.best.makespan);
  EXPECT_EQ(chaotic.search.best.feasible, baseline.search.best.feasible);
  EXPECT_EQ(chaotic.fingerprint, baseline.fingerprint);
  fs::remove_all(scratch);
}

TEST(ProcessShardLauncher, ExecFailureSurfacesAsExit127) {
  const sched::ShardLauncher launcher = sched::process_shard_launcher(
      [](int) -> std::vector<std::string> {
        return {"/nonexistent-binary-fppn-test"};
      });
  try {
    launcher(plan_of(1));
    FAIL() << "expected the launcher to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("exit status 127"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace fppn
