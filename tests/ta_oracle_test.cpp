// Cross-validation: the schedule-to-TA translation executed by the TA
// engine must reproduce the VM runtime's job start/end times for one
// frame with WCET execution and zero overhead — the same role the
// BIP-based TA translation plays in the paper's toolchain.
#include "ta/translate.hpp"

#include <gtest/gtest.h>

#include "apps/fig1.hpp"
#include "apps/fft.hpp"
#include "runtime/vm_runtime.hpp"
#include "sched/list_scheduler.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

/// Runs the VM for one frame (servers all invoked at their boundaries so
/// nothing is skipped) and collects job start/end model times.
std::map<std::string, std::pair<Time, Time>> vm_times(
    const Network& net, const DerivedTaskGraph& derived,
    const StaticSchedule& schedule,
    const std::map<ProcessId, SporadicScript>& scripts) {
  VmRunOptions opts;
  opts.frames = 1;
  const RunResult r = run_static_order_vm(net, derived, schedule, opts, {}, scripts);
  std::map<std::string, std::pair<Time, Time>> out;
  for (const TraceEvent& e : r.trace.events()) {
    if (e.kind == TraceEventKind::kJobRun) {
      out.emplace(e.label, std::make_pair(e.time, *e.end));
    }
  }
  return out;
}

/// Scripts that invoke every server slot (burst m at every window start),
/// so no job is false-marked.
std::map<ProcessId, SporadicScript> saturate_sporadics(const Network& net,
                                                       const DerivedTaskGraph& derived) {
  std::map<ProcessId, SporadicScript> scripts;
  for (const auto& [p, info] : derived.servers) {
    std::vector<Time> times;
    const std::int64_t subsets =
        Rational::floor_div(derived.hyperperiod.value(), info.server_period.value());
    for (std::int64_t n = 1; n <= subsets; ++n) {
      const Time boundary = subset_boundary(info, 0, n, derived.hyperperiod);
      // A burst right at the boundary (right-closed windows) or just after
      // the window opens (left-closed).
      const Time t = info.priority_over_user ? boundary : boundary - info.server_period;
      for (int i = 0; i < info.burst; ++i) {
        if (t >= Time()) {
          times.push_back(t);
        }
      }
    }
    scripts.emplace(p, SporadicScript(std::move(times),
                                      net.process(p).event.burst,
                                      net.process(p).event.period));
  }
  return scripts;
}

void expect_oracle_matches_vm(const Network& net, const DerivedTaskGraph& derived,
                              std::int64_t processors) {
  const StaticSchedule schedule =
      list_schedule(derived.graph, PriorityHeuristic::kAlapEdf, processors);
  const auto scripts = saturate_sporadics(net, derived);
  const auto vm = vm_times(net, derived, schedule, scripts);

  const ta::TaJobTimes oracle = ta::run_schedule_oracle(derived.graph, schedule);
  ASSERT_EQ(oracle.start.size(), derived.graph.job_count());
  for (const auto& [id, start] : oracle.start) {
    const std::string& name = derived.graph.job(id).name;
    const auto it = vm.find(name);
    ASSERT_NE(it, vm.end()) << name << " not executed by the VM";
    EXPECT_EQ(it->second.first, start) << "start of " << name;
    EXPECT_EQ(it->second.second, oracle.end.at(id)) << "end of " << name;
  }
}

TEST(TaOracle, Fig1OnTwoProcessors) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  expect_oracle_matches_vm(app.net, derived, 2);
}

TEST(TaOracle, Fig1OnThreeProcessors) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  expect_oracle_matches_vm(app.net, derived, 3);
}

TEST(TaOracle, FftOnTwoProcessors) {
  const auto app = apps::build_fft(8);
  const auto derived =
      derive_task_graph(app.net, app.uniform_wcets(Duration::ratio_ms(40, 3)));
  expect_oracle_matches_vm(app.net, derived, 2);
}

TEST(TaOracle, SkippedJobsBypassInstantly) {
  // Mark the CoefB servers skipped: FilterB[1] may start as soon as its
  // other predecessors allow, with the skip happening at the boundary.
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const StaticSchedule schedule =
      list_schedule(derived.graph, PriorityHeuristic::kAlapEdf, 2);
  std::vector<JobId> skipped;
  for (const JobId id : derived.graph.jobs_of(app.coef_b)) {
    skipped.push_back(id);
  }
  const ta::TaJobTimes oracle =
      ta::run_schedule_oracle(derived.graph, schedule, skipped);
  // The skipped jobs have no start/end events.
  EXPECT_EQ(oracle.start.size(), derived.graph.job_count() - skipped.size());
  // And the VM with no sporadic invocations agrees on every executed job.
  const auto vm = vm_times(app.net, derived, schedule, {});
  for (const auto& [id, start] : oracle.start) {
    const std::string& name = derived.graph.job(id).name;
    const auto it = vm.find(name);
    ASSERT_NE(it, vm.end()) << name;
    EXPECT_EQ(it->second.first, start) << name;
  }
}

TEST(TaOracle, TranslationRejectsUnplacedJobs) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const StaticSchedule empty(derived.graph.job_count(), 2);
  EXPECT_THROW((void)ta::translate_schedule(derived.graph, empty),
               std::invalid_argument);
}

}  // namespace
}  // namespace fppn
