// Tests for testing::FaultInjector — the determinism contract behind
// every chaos suite: the decision stream is a pure function of
// (seed, site, per-site call index), so a failing chaos run replays
// bit-identically from its printed seed; sites draw from independent
// streams (cross-site interleaving cannot shift another site's faults);
// and a disarmed injector is byte-for-byte a raw syscall.
#include "testing/fault_injector.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

namespace fppn {
namespace {

using testing::FaultConfig;
using testing::FaultDecision;
using testing::FaultInjector;
using testing::FaultSite;

/// The injector is process-global: every test leaves it disarmed so the
/// next one (and any incidental syscall in gtest itself) is passthrough.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().disarm(); }
};

std::vector<FaultDecision> sample(FaultSite site, int n) {
  std::vector<FaultDecision> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(FaultInjector::instance().decide(site));
  }
  return out;
}

bool same(const std::vector<FaultDecision>& a, const std::vector<FaultDecision>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].fire != b[i].fire || a[i].roll != b[i].roll) {
      return false;
    }
  }
  return true;
}

TEST_F(FaultInjectorTest, SameSeedReplaysTheSameDecisionStream) {
  FaultInjector& injector = FaultInjector::instance();
  injector.arm(FaultConfig::uniform(/*seed=*/42, /*rate_per_1024=*/512));
  const std::vector<FaultDecision> first = sample(FaultSite::kRead, 256);

  injector.arm(FaultConfig::uniform(42, 512));  // re-arm resets the counters
  const std::vector<FaultDecision> replay = sample(FaultSite::kRead, 256);
  EXPECT_TRUE(same(first, replay));

  // At rate 512/1024 over 256 draws, both outcomes must occur — a stream
  // that never fires (or always fires) would make the rate knob a lie.
  int fired = 0;
  for (const FaultDecision& d : first) {
    fired += d.fire ? 1 : 0;
  }
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 256);
}

TEST_F(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjector& injector = FaultInjector::instance();
  injector.arm(FaultConfig::uniform(1, 512));
  const std::vector<FaultDecision> a = sample(FaultSite::kRead, 256);
  injector.arm(FaultConfig::uniform(2, 512));
  const std::vector<FaultDecision> b = sample(FaultSite::kRead, 256);
  EXPECT_FALSE(same(a, b));
}

TEST_F(FaultInjectorTest, SitesDrawFromIndependentStreams) {
  // The replay guarantee must survive thread interleaving across sites:
  // site kWrite's n-th decision depends on nothing but (seed, kWrite, n),
  // so burning any number of kRead draws in between cannot shift it.
  FaultInjector& injector = FaultInjector::instance();
  injector.arm(FaultConfig::uniform(7, 512));
  const std::vector<FaultDecision> writes_alone = sample(FaultSite::kWrite, 64);

  injector.arm(FaultConfig::uniform(7, 512));
  std::vector<FaultDecision> writes_interleaved;
  for (int i = 0; i < 64; ++i) {
    (void)injector.decide(FaultSite::kRead);
    (void)injector.decide(FaultSite::kRead);
    writes_interleaved.push_back(injector.decide(FaultSite::kWrite));
  }
  EXPECT_TRUE(same(writes_alone, writes_interleaved));
}

TEST_F(FaultInjectorTest, RateEndpointsAreExact) {
  FaultInjector& injector = FaultInjector::instance();
  injector.arm(FaultConfig::uniform(3, 0));
  for (const FaultDecision& d : sample(FaultSite::kRename, 128)) {
    EXPECT_FALSE(d.fire);
  }
  injector.arm(FaultConfig::uniform(3, 1024));
  for (const FaultDecision& d : sample(FaultSite::kRename, 128)) {
    EXPECT_TRUE(d.fire);
  }
}

TEST_F(FaultInjectorTest, CountersTrackCallsAndInjections) {
  FaultInjector& injector = FaultInjector::instance();
  injector.arm(FaultConfig::uniform(11, 1024));
  (void)sample(FaultSite::kUnlink, 10);
  (void)sample(FaultSite::kFsync, 3);
  EXPECT_EQ(injector.calls(FaultSite::kUnlink), 10u);
  EXPECT_EQ(injector.injected(FaultSite::kUnlink), 10u);
  EXPECT_EQ(injector.calls(FaultSite::kFsync), 3u);
  EXPECT_EQ(injector.injected_total(), 13u);
  EXPECT_EQ(injector.seed(), 11u);

  // disarm() freezes the counters for post-run asserts...
  injector.disarm();
  (void)injector.decide(FaultSite::kUnlink);
  EXPECT_EQ(injector.injected(FaultSite::kUnlink), 10u);
  // ...and arm() resets them.
  injector.arm(FaultConfig::uniform(11, 1024));
  EXPECT_EQ(injector.calls(FaultSite::kUnlink), 0u);
  EXPECT_EQ(injector.injected_total(), 0u);
}

TEST_F(FaultInjectorTest, DisarmedWrappersAreRawSyscalls) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload = "passthrough";
  EXPECT_EQ(testing::fault::write(fds[1], payload.data(), payload.size()),
            static_cast<ssize_t>(payload.size()));
  char buf[64];
  EXPECT_EQ(testing::fault::read(fds[0], buf, sizeof(buf)),
            static_cast<ssize_t>(payload.size()));
  EXPECT_EQ(std::string(buf, payload.size()), payload);

  pollfd pfd{fds[0], POLLIN, 0};
  EXPECT_EQ(testing::fault::poll(&pfd, 1, 0), 0);  // drained: nothing readable
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(FaultInjectorTest, InjectedWriteFaultsAreWellFormed) {
  // Every injected write outcome must look like something POSIX could
  // have produced: a recognized errno with -1, or a short count in
  // [1, len) — never 0, never more than requested, never a stray errno.
  FaultInjector& injector = FaultInjector::instance();
  injector.arm(FaultConfig::uniform(13, 1024));
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload(4096, 'w');
  for (int i = 0; i < 64; ++i) {
    errno = 0;
    const ssize_t n = testing::fault::write(fds[1], payload.data(), payload.size());
    if (n < 0) {
      EXPECT_TRUE(errno == EINTR || errno == EAGAIN || errno == ECONNRESET)
          << std::strerror(errno);
    } else {
      EXPECT_GE(n, 1);
      EXPECT_LT(n, static_cast<ssize_t>(payload.size()));
      char sink[4096];
      ASSERT_EQ(::read(fds[0], sink, sizeof(sink)), n);  // bytes really left
    }
  }
  EXPECT_EQ(injector.injected(FaultSite::kWrite), 64u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(FaultInjectorTest, InjectedRenameIsNotPerformed) {
  FaultInjector& injector = FaultInjector::instance();
  const std::string dir = ::testing::TempDir();
  const std::string from = dir + "/fault_rename_from_" + std::to_string(::getpid());
  const std::string to = dir + "/fault_rename_to_" + std::to_string(::getpid());
  {
    const int fd = ::open(from.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    ::close(fd);
  }
  injector.arm(FaultConfig::uniform(17, 1024));
  errno = 0;
  EXPECT_EQ(testing::fault::rename(from.c_str(), to.c_str()), -1);
  EXPECT_EQ(errno, EIO);
  injector.disarm();
  EXPECT_EQ(::access(from.c_str(), F_OK), 0);   // source untouched
  EXPECT_NE(::access(to.c_str(), F_OK), 0);     // destination never appeared
  EXPECT_EQ(testing::fault::rename(from.c_str(), to.c_str()), 0);
  ::unlink(to.c_str());
}

}  // namespace
}  // namespace fppn
