#include "fppn/value.hpp"

#include <gtest/gtest.h>

namespace fppn {
namespace {

TEST(Value, NoDataIndicator) {
  EXPECT_FALSE(has_data(no_data()));
  EXPECT_TRUE(has_data(Value{std::int64_t{0}}));
  EXPECT_TRUE(has_data(Value{0.0}));
  EXPECT_TRUE(has_data(Value{std::string{}}));
  EXPECT_TRUE(has_data(Value{std::vector<double>{}}));
}

TEST(Value, ToString) {
  EXPECT_EQ(value_to_string(no_data()), "none");
  EXPECT_EQ(value_to_string(Value{std::int64_t{42}}), "42");
  EXPECT_EQ(value_to_string(Value{std::string{"abc"}}), "\"abc\"");
  EXPECT_EQ(value_to_string(Value{std::vector<double>{1.0, 2.5}}), "[1, 2.5]");
}

TEST(Value, EqualityIsContentBased) {
  const Value a{std::vector<double>{1.0, 2.0}};
  const Value b{std::vector<double>{1.0, 2.0}};
  const Value c{std::vector<double>{1.0}};
  EXPECT_EQ(a, b);
  EXPECT_NE(c, a);
  EXPECT_NE(Value{std::int64_t{1}}, Value{1.0});  // different alternatives differ
}

TEST(Value, HashRespectsEquality) {
  EXPECT_EQ(value_hash(Value{std::int64_t{7}}), value_hash(Value{std::int64_t{7}}));
  EXPECT_EQ(value_hash(Value{std::vector<double>{1.0, 2.0}}),
            value_hash(Value{std::vector<double>{1.0, 2.0}}));
}

TEST(Value, HashDistinguishesAlternatives) {
  // int64 1 and double 1.0 are different channel alphabet letters.
  EXPECT_NE(value_hash(Value{std::int64_t{1}}), value_hash(Value{1.0}));
  EXPECT_NE(value_hash(no_data()), value_hash(Value{std::int64_t{0}}));
}

}  // namespace
}  // namespace fppn
