// The buffered-channel / pipelining extension (the paper's named future
// work): buffered FIFOs keep writer-over-reader functional priority for
// zero-delay determinism, but replace the §III-A serialization edges with
// dataflow edges w[k] -> r[k] and buffer-reuse edges r[k] -> w[k+B] — so a
// producer/consumer pair can finally overlap across hyperperiods.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "runtime/vm_runtime.hpp"
#include "sched/search.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

/// The same 2-stage pipeline as unfolding_test's deep_pipeline, but with a
/// capacity-B buffered channel and real data flowing through it.
struct Pipeline {
  Network net;
  ProcessId stage1, stage2;
  ChannelId out;
};

Pipeline buffered_pipeline(int capacity) {
  Pipeline p;
  NetworkBuilder b;
  p.stage1 = b.periodic("stage1", Duration::ms(100), Duration::ms(250),
                        behavior([](JobContext& ctx) {
                          const double k = static_cast<double>(ctx.job_index());
                          ctx.write("q", k * k);
                        }));
  p.stage2 = b.periodic("stage2", Duration::ms(100), Duration::ms(250),
                        behavior([](JobContext& ctx) {
                          ctx.write("O", ctx.read("q"));
                        }));
  b.buffered_fifo("q", p.stage1, p.stage2, capacity);
  p.out = b.external_output("O", p.stage2);
  p.net = std::move(b).build();
  return p;
}

WcetMap pipeline_wcets(const Pipeline& p, std::int64_t c) {
  WcetMap w;
  w.emplace(p.stage1, Duration::ms(c));
  w.emplace(p.stage2, Duration::ms(c));
  return w;
}

TEST(BufferedChannel, BuilderValidation) {
  NetworkBuilder b;
  const ProcessId w =
      b.periodic("w", Duration::ms(100), Duration::ms(100), no_op_behavior());
  const ProcessId r =
      b.periodic("r", Duration::ms(100), Duration::ms(100), no_op_behavior());
  EXPECT_THROW(b.buffered_fifo("q", w, r, 1), std::invalid_argument);
  EXPECT_THROW(b.buffered_fifo("q", w, r, 0), std::invalid_argument);
}

TEST(BufferedChannel, WriterPriorityInstalledAutomatically) {
  const Pipeline p = buffered_pipeline(2);
  EXPECT_TRUE(p.net.has_priority(p.stage1, p.stage2));
}

TEST(BufferedChannel, ConflictingExplicitPriorityRejected) {
  NetworkBuilder b;
  const ProcessId w =
      b.periodic("w", Duration::ms(100), Duration::ms(100), no_op_behavior());
  const ProcessId r =
      b.periodic("r", Duration::ms(100), Duration::ms(100), no_op_behavior());
  b.priority(r, w);  // reader over writer...
  b.buffered_fifo("q", w, r, 2);  // ...conflicts with the implied w -> r
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);  // FP cycle
}

TEST(BufferedChannel, UnequalRatesRejectedAtDerivation) {
  NetworkBuilder b;
  const ProcessId w =
      b.periodic("w", Duration::ms(100), Duration::ms(100), no_op_behavior());
  const ProcessId r =
      b.periodic("r", Duration::ms(200), Duration::ms(200), no_op_behavior());
  b.buffered_fifo("q", w, r, 2);
  const Network net = std::move(b).build();
  EXPECT_THROW(derive_task_graph(net, Duration::ms(10)), std::invalid_argument);
}

TEST(BufferedChannel, SporadicEndpointRejectedAtDerivation) {
  NetworkBuilder b;
  const ProcessId u =
      b.periodic("u", Duration::ms(100), Duration::ms(100), no_op_behavior());
  const ProcessId s = b.sporadic("s", 1, Duration::ms(200), Duration::ms(300),
                                 no_op_behavior());
  b.buffered_fifo("q", s, u, 2);
  const Network net = std::move(b).build();
  EXPECT_THROW(derive_task_graph(net, Duration::ms(10)), std::invalid_argument);
}

TEST(BufferedChannel, DataflowAndReuseEdgesReplaceSerialization) {
  const Pipeline p = buffered_pipeline(2);
  DerivationOptions opts;
  opts.unfolding = 4;
  const auto derived = derive_task_graph(p.net, pipeline_wcets(p, 70), opts);
  const TaskGraph& tg = derived.graph;
  ASSERT_EQ(tg.job_count(), 8u);
  const auto job = [&](const std::string& n) { return *tg.find(n); };
  // Dataflow edges w[k] -> r[k].
  EXPECT_TRUE(tg.has_edge(job("stage1[1]"), job("stage2[1]")));
  EXPECT_TRUE(tg.has_edge(job("stage1[3]"), job("stage2[3]")));
  // Buffer-reuse edges r[k] -> w[k+2].
  EXPECT_TRUE(tg.has_edge(job("stage2[1]"), job("stage1[3]")));
  EXPECT_TRUE(tg.has_edge(job("stage2[2]"), job("stage1[4]")));
  // NO serialization edge r[k] -> w[k+1] (the unbuffered rule's edge).
  const Reachability reach(tg.precedence());
  EXPECT_FALSE(reach.reaches(NodeId(job("stage2[1]").value()),
                             NodeId(job("stage1[2]").value())));
}

TEST(BufferedChannel, PipeliningBecomesFeasible) {
  // The flip the unbuffered model cannot achieve (see unfolding_test's
  // FpSerializationLimitsPipeliningWithoutBuffering): 70+70 ms of work per
  // 100 ms period is infeasible single-slot at any M, but pipelines on two
  // processors with capacity 2.
  DerivationOptions opts;
  opts.unfolding = 5;
  opts.truncate_deadlines = false;  // steady-state view (no frame-edge clip)

  const Pipeline unbuffered_like = buffered_pipeline(2);
  // Re-derive the *unbuffered* variant for reference.
  NetworkBuilder b;
  const ProcessId s1 =
      b.periodic("stage1", Duration::ms(100), Duration::ms(250), no_op_behavior());
  const ProcessId s2 =
      b.periodic("stage2", Duration::ms(100), Duration::ms(250), no_op_behavior());
  b.fifo("q", s1, s2);
  b.priority(s1, s2);
  const Network serial_net = std::move(b).build();
  WcetMap serial_wcets;
  serial_wcets.emplace(s1, Duration::ms(70));
  serial_wcets.emplace(s2, Duration::ms(70));
  const auto serial = derive_task_graph(serial_net, serial_wcets, opts);
  EXPECT_EQ(min_processors(serial.graph, 8).processors, 0) << "sanity: serialized";

  const auto buffered =
      derive_task_graph(unbuffered_like.net, pipeline_wcets(unbuffered_like, 70), opts);
  const auto result = min_processors(buffered.graph, 8);
  EXPECT_EQ(result.processors, 2);
  ASSERT_TRUE(result.attempt.has_value());
  // Pipelining evidence: stage1[k+1] starts before stage2[k] completes.
  const StaticSchedule& s = result.attempt->schedule;
  bool overlap = false;
  for (std::int64_t k = 1; k < 5; ++k) {
    const auto a = buffered.graph.find("stage1[" + std::to_string(k + 1) + "]");
    const auto c = buffered.graph.find("stage2[" + std::to_string(k) + "]");
    overlap |= s.start(*a) < s.end(*c, buffered.graph);
  }
  EXPECT_TRUE(overlap);
}

TEST(BufferedChannel, VmMatchesZeroDelayUnderPipelining) {
  const Pipeline p = buffered_pipeline(2);
  DerivationOptions opts;
  opts.unfolding = 2;
  opts.truncate_deadlines = false;
  const auto derived = derive_task_graph(p.net, pipeline_wcets(p, 70), opts);
  const auto attempt = best_schedule(derived.graph, 2);
  VmRunOptions run_opts;
  run_opts.frames = 3;
  const RunResult run =
      run_static_order_vm(p.net, derived, attempt.schedule, run_opts, {}, {});
  const ZeroDelayResult ref =
      zero_delay_reference(p.net, derived.hyperperiod, 3, {}, {});
  EXPECT_TRUE(run.histories.functionally_equal(ref.histories))
      << run.histories.diff(ref.histories, p.net);
  // The reader saw 1, 4, 9, 16, ... in order.
  const auto& samples = run.histories.output_samples.at(p.out);
  ASSERT_EQ(samples.size(), 6u);  // 2 stage2 jobs per 200 ms super-frame x 3
  for (std::size_t k = 0; k < samples.size(); ++k) {
    const double expect = static_cast<double>((k + 1) * (k + 1));
    EXPECT_EQ(samples[k].value, Value{expect}) << "k=" << k;
  }
}

TEST(BufferedChannel, OverflowGuardTrips) {
  // Writing capacity+1 tokens without a read trips the runtime guard.
  NetworkBuilder b;
  const ProcessId w = b.periodic("w", Duration::ms(100), Duration::ms(100),
                                 behavior([](JobContext& ctx) {
                                   ctx.write("q", Value{1.0});
                                   ctx.write("q", Value{2.0});
                                   ctx.write("q", Value{3.0});  // overflow
                                 }));
  const ProcessId r =
      b.periodic("r", Duration::ms(100), Duration::ms(100), no_op_behavior());
  b.buffered_fifo("q", w, r, 2);
  const Network net = std::move(b).build();
  ExecutionState state(net);
  EXPECT_THROW(state.run_job(w, Time::ms(0)), std::logic_error);
}

TEST(BufferedChannel, MixedPairStaysSerialized) {
  // A pair with BOTH a buffered and a single-slot channel keeps the full
  // serialization (the single-slot channel demands it).
  NetworkBuilder b;
  const ProcessId w =
      b.periodic("w", Duration::ms(100), Duration::ms(100), no_op_behavior());
  const ProcessId r =
      b.periodic("r", Duration::ms(100), Duration::ms(100), no_op_behavior());
  b.buffered_fifo("q", w, r, 2);
  b.blackboard("bb", w, r);
  const Network net = std::move(b).build();
  DerivationOptions opts;
  opts.unfolding = 3;
  const auto derived = derive_task_graph(net, Duration::ms(10), opts);
  const Reachability reach(derived.graph.precedence());
  // Serialization edge r[k] -> w[k+1] is back.
  const auto rk = derived.graph.find("r[1]");
  const auto wk1 = derived.graph.find("w[2]");
  EXPECT_TRUE(reach.reaches(NodeId(rk->value()), NodeId(wk1->value())));
}

}  // namespace
}  // namespace fppn
