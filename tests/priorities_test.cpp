#include "sched/priorities.hpp"

#include <gtest/gtest.h>

namespace fppn {
namespace {

Job make_job(const std::string& name, std::int64_t a, std::int64_t d, std::int64_t c,
             std::size_t process = 0) {
  Job j;
  j.process = ProcessId{process};
  j.arrival = Time::ms(a);
  j.deadline = Time::ms(d);
  j.wcet = Duration::ms(c);
  j.name = name;
  return j;
}

TEST(BLevels, LongestDownstreamPath) {
  TaskGraph tg;
  const JobId a = tg.add_job(make_job("A", 0, 100, 10));
  const JobId b = tg.add_job(make_job("B", 0, 100, 20));
  const JobId c = tg.add_job(make_job("C", 0, 100, 5));
  tg.add_edge(a, b);
  tg.add_edge(a, c);
  const auto levels = b_levels(tg);
  EXPECT_EQ(levels[a.value()], Duration::ms(30));  // A + max(B, C)
  EXPECT_EQ(levels[b.value()], Duration::ms(20));
  EXPECT_EQ(levels[c.value()], Duration::ms(5));
}

TEST(SchedulePriority, AlapEdfOrdersByAlapCompletion) {
  TaskGraph tg;
  const JobId loose = tg.add_job(make_job("loose", 0, 500, 10));
  const JobId tight = tg.add_job(make_job("tight", 0, 50, 10));
  const auto order = schedule_priority(tg, PriorityHeuristic::kAlapEdf);
  EXPECT_EQ(order[0], tight);
  EXPECT_EQ(order[1], loose);
}

TEST(SchedulePriority, AlapEdfSeesDownstreamUrgency) {
  // "loose" has a relaxed own deadline but feeds an urgent successor: its
  // ALAP completion is early, so ALAP-EDF ranks it first — nominal-EDF
  // would not. This is why the paper adjusts EDF with ALAP.
  TaskGraph tg;
  const JobId feeder = tg.add_job(make_job("feeder", 0, 500, 10));
  const JobId urgent = tg.add_job(make_job("urgent", 0, 60, 40));
  const JobId lazy = tg.add_job(make_job("lazy", 0, 80, 10));
  tg.add_edge(feeder, urgent);
  const auto order = schedule_priority(tg, PriorityHeuristic::kAlapEdf);
  EXPECT_EQ(order[0], feeder);  // ALAP completion 60-40 = 20
  EXPECT_EQ(order[1], urgent);
  EXPECT_EQ(order[2], lazy);
}

TEST(SchedulePriority, BLevelPrefersLongPaths) {
  TaskGraph tg;
  const JobId head = tg.add_job(make_job("head", 0, 1000, 10));
  const JobId mid = tg.add_job(make_job("mid", 0, 1000, 10));
  const JobId tail = tg.add_job(make_job("tail", 0, 1000, 10));
  const JobId solo = tg.add_job(make_job("solo", 0, 1000, 25));
  tg.add_edge(head, mid);
  tg.add_edge(mid, tail);
  const auto order = schedule_priority(tg, PriorityHeuristic::kBLevel);
  EXPECT_EQ(order[0], head);  // b-level 30 > solo's 25
  EXPECT_EQ(order[1], solo);
  (void)tail;
}

TEST(SchedulePriority, DeadlineMonotonicUsesRelativeDeadlines) {
  TaskGraph tg;
  const JobId long_rel = tg.add_job(make_job("long", 0, 300, 10));
  const JobId short_rel = tg.add_job(make_job("short", 100, 250, 10));  // D-A = 150
  const auto order = schedule_priority(tg, PriorityHeuristic::kDeadlineMonotonic);
  EXPECT_EQ(order[0], short_rel);
  EXPECT_EQ(order[1], long_rel);
}

TEST(SchedulePriority, ArrivalOrderIsFifo) {
  TaskGraph tg;
  const JobId late = tg.add_job(make_job("late", 50, 500, 10));
  const JobId early = tg.add_job(make_job("early", 0, 900, 10));
  const auto order = schedule_priority(tg, PriorityHeuristic::kArrivalOrder);
  EXPECT_EQ(order[0], early);
  EXPECT_EQ(order[1], late);
}

TEST(SchedulePriority, IsAlwaysAPermutation) {
  TaskGraph tg;
  for (int i = 0; i < 20; ++i) {
    tg.add_job(make_job("J" + std::to_string(i), i * 3, 500 + i, 5));
  }
  for (const PriorityHeuristic h : all_heuristics()) {
    const auto order = schedule_priority(tg, h);
    std::vector<bool> seen(tg.job_count(), false);
    for (const JobId id : order) {
      EXPECT_FALSE(seen[id.value()]) << to_string(h);
      seen[id.value()] = true;
    }
    EXPECT_EQ(order.size(), tg.job_count());
  }
}

TEST(SchedulePriority, DeterministicTieBreak) {
  TaskGraph tg;
  tg.add_job(make_job("A", 0, 100, 10));
  tg.add_job(make_job("B", 0, 100, 10));
  for (const PriorityHeuristic h : all_heuristics()) {
    const auto o1 = schedule_priority(tg, h);
    const auto o2 = schedule_priority(tg, h);
    EXPECT_EQ(o1, o2) << to_string(h);
    EXPECT_EQ(o1[0], JobId(0)) << to_string(h);  // id tie-break
  }
}

TEST(Heuristics, NamesAndEnumeration) {
  EXPECT_EQ(all_heuristics().size(), 4u);
  EXPECT_EQ(to_string(PriorityHeuristic::kAlapEdf), "alap-edf");
  EXPECT_EQ(to_string(PriorityHeuristic::kBLevel), "b-level");
  EXPECT_EQ(to_string(PriorityHeuristic::kDeadlineMonotonic), "deadline-monotonic");
  EXPECT_EQ(to_string(PriorityHeuristic::kArrivalOrder), "arrival-order");
}

}  // namespace
}  // namespace fppn
