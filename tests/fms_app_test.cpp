// The FMS avionics case study (Fig. 7, §V-B): the published numbers —
// hyperperiod 40 s reduced to 10 s, a task graph of 812 jobs, load ~0.23,
// single-processor feasibility — plus the behavior of the BCP pipeline.
#include "apps/fms.hpp"

#include <gtest/gtest.h>

#include "fppn/semantics.hpp"
#include "sched/search.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

using apps::build_fms;

TEST(FmsApp, TwelveProcesses) {
  const auto app = build_fms();
  EXPECT_EQ(app.net.process_count(), 12u);
  EXPECT_EQ(app.sporadics().size(), 7u);
}

TEST(FmsApp, HyperperiodReduction40sTo10s) {
  // §V-B: "a too high code generation overhead due to a long hyperperiod
  // (40 s) ... we reduced it to 10 s by reducing the period of MagnDeclin
  // from 1600 ms to 400 ms".
  const auto original = build_fms(/*reduced_period=*/false);
  EXPECT_EQ(original.net.hyperperiod(), Duration::ms(40000));
  const auto reduced = build_fms(/*reduced_period=*/true);
  EXPECT_EQ(reduced.net.hyperperiod(), Duration::ms(10000));
}

TEST(FmsApp, SporadicsServedByTheirUsers) {
  const auto app = build_fms();
  EXPECT_EQ(app.net.user_of(app.anemo_config), app.high_freq_bcp);
  EXPECT_EQ(app.net.user_of(app.gps_config), app.high_freq_bcp);
  EXPECT_EQ(app.net.user_of(app.irs_config), app.high_freq_bcp);
  EXPECT_EQ(app.net.user_of(app.doppler_config), app.high_freq_bcp);
  EXPECT_EQ(app.net.user_of(app.bcp_config), app.high_freq_bcp);
  EXPECT_EQ(app.net.user_of(app.magn_declin_config), app.magn_declin);
  EXPECT_EQ(app.net.user_of(app.performance_config), app.performance);
  EXPECT_TRUE(app.net.in_schedulable_subclass());
}

TEST(FmsApp, SporadicsHaveLowerPriorityThanUsers) {
  // §V-B: "The sporadic processes had less functional priority than their
  // periodic users."
  const auto app = build_fms();
  for (const ProcessId p : app.sporadics()) {
    const ProcessId user = *app.net.user_of(p);
    EXPECT_TRUE(app.net.has_priority(user, p))
        << app.net.process(p).name << " should be below its user";
  }
}

TEST(FmsApp, TaskGraphHas812Jobs) {
  // The headline §V-B number: 812 jobs in the derived task graph.
  const auto app = build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  EXPECT_EQ(derived.graph.job_count(), 812u);
  EXPECT_EQ(derived.hyperperiod, Duration::ms(10000));
}

TEST(FmsApp, PerProcessJobCounts) {
  const auto app = build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  const auto count = [&](ProcessId p) {
    return derived.graph.jobs_of(p).size();
  };
  EXPECT_EQ(count(app.sensor_input), 50u);
  EXPECT_EQ(count(app.high_freq_bcp), 50u);
  EXPECT_EQ(count(app.low_freq_bcp), 2u);
  EXPECT_EQ(count(app.magn_declin), 25u);
  EXPECT_EQ(count(app.performance), 10u);
  EXPECT_EQ(count(app.anemo_config), 100u);
  EXPECT_EQ(count(app.gps_config), 100u);
  EXPECT_EQ(count(app.irs_config), 100u);
  EXPECT_EQ(count(app.doppler_config), 100u);
  EXPECT_EQ(count(app.bcp_config), 100u);
  EXPECT_EQ(count(app.magn_declin_config), 125u);
  EXPECT_EQ(count(app.performance_config), 50u);
}

TEST(FmsApp, EdgeCountNearPaper) {
  // The paper reports 1977 edges; the exact count depends on the (not
  // fully published) FP graph and on whether the count was taken before
  // or after transitive reduction. Our reconstruction: 1124 edges after
  // the (unique) transitive reduction, 2074 in the generating set before
  // it — the paper's figure sits between the two. Pin both so regressions
  // are caught, and keep a sanity band around the paper's regime.
  const auto app = build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  EXPECT_EQ(derived.graph.edge_count(), 1124u);
  EXPECT_EQ(derived.graph.edge_count() + derived.edges_removed, 2074u);
  EXPECT_GT(derived.graph.edge_count(), 900u);
  EXPECT_LT(derived.graph.edge_count() + derived.edges_removed, 2400u);
}

TEST(FmsApp, LoadNearPaperAndSingleProcessorFeasible) {
  // §V-B: load ~0.23; "consistently, a single-processor mapping
  // encountered no deadline misses".
  const auto app = build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  const LoadResult load = task_graph_load(derived.graph);
  EXPECT_NEAR(load.load_value(), 0.23, 0.05);  // paper: ~0.23; ours: 0.2225
  EXPECT_EQ(load.min_processors(), 1);
  const auto attempt = best_schedule(derived.graph, 1);
  EXPECT_TRUE(attempt.feasible);
}

TEST(FmsApp, MultiProcessorSchedulesAlsoFeasible) {
  const auto app = build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  for (const std::int64_t m : {2, 4}) {
    const auto attempt = best_schedule(derived.graph, m);
    EXPECT_TRUE(attempt.feasible) << m << " processors";
  }
}

TEST(FmsApp, BcpPipelineReactsToSensors) {
  const auto app = build_fms();
  const InputScripts inputs = app.make_inputs(10);
  const auto res = run_zero_delay(
      app.net, InvocationPlan::build(app.net, Time::ms(2000)), inputs);
  const auto& bcp = res.histories.output_samples.at(app.bcp_out);
  EXPECT_EQ(bcp.size(), 10u);  // HighFreqBCP every 200 ms
  // The fused position must move once sensor data arrives.
  EXPECT_NE(bcp.front().value, bcp.back().value);
  const auto& fuel = res.histories.output_samples.at(app.fuel_out);
  EXPECT_EQ(fuel.size(), 2u);  // Performance at 0 and 1000
  // Fuel estimate accumulates monotonically.
  EXPECT_GT(std::get<double>(fuel[1].value), std::get<double>(fuel[0].value));
}

TEST(FmsApp, MagnDeclinStrideExecutesBodyOncePerFour) {
  // §V-B period-reduction trick: at 400 ms the main body runs once per 4
  // invocations, so Declination is written 7 times in 10 s (k = 1, 5, 9,
  // 13, 17, 21, 25), the original 1600 ms rate.
  const auto app = build_fms();
  const InputScripts inputs = app.make_inputs(50);
  const auto res = run_zero_delay(
      app.net, InvocationPlan::build(app.net, Time::ms(10000)), inputs);
  const ChannelId declination = *app.net.find_channel("Declination");
  const auto it = res.histories.channel_writes.find(declination);
  ASSERT_NE(it, res.histories.channel_writes.end());
  EXPECT_EQ(it->second.size(), 7u);
  // The unreduced variant writes at every invocation: 1600 ms -> 7 in 10 s
  // too, but with 25 invocations the reduced variant would have written 25
  // without the stride. Check the stride actually suppressed 18 writes.
  const auto raw = build_fms(false);
  const auto res_raw = run_zero_delay(
      raw.net, InvocationPlan::build(raw.net, Time::ms(10000)), raw.make_inputs(50));
  const ChannelId decl_raw = *raw.net.find_channel("Declination");
  EXPECT_EQ(res_raw.histories.channel_writes.at(decl_raw).size(), 7u);
}

TEST(FmsApp, ConfigCommandsReachTheFusion) {
  const auto app = build_fms();
  // Zero GPS weight vs full GPS weight must change the BCP whenever the
  // GPS reading differs from the other sensors.
  InputScripts inputs = app.make_inputs(5, /*seed=*/3);
  std::map<ProcessId, SporadicScript> cmd;
  cmd.emplace(app.gps_config,
              SporadicScript({Time::ms(10)}, 2, Duration::ms(200)));
  // Override the GPS command stream with weight 0.
  const ChannelId gps_cmd = *app.net.find_channel("GPSCmd");
  inputs[gps_cmd] = std::vector<Value>{Value{0.0}};
  const auto res_zero = run_zero_delay(
      app.net, InvocationPlan::build(app.net, Time::ms(1000), cmd), inputs);
  inputs[gps_cmd] = std::vector<Value>{Value{1.0}};
  const auto res_one = run_zero_delay(
      app.net, InvocationPlan::build(app.net, Time::ms(1000), cmd), inputs);
  EXPECT_NE(res_zero.histories.output_samples.at(app.bcp_out),
            res_one.histories.output_samples.at(app.bcp_out));
}

}  // namespace
}  // namespace fppn
