#include "rt/rational.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <unordered_set>

namespace fppn {
namespace {

TEST(Rational, DefaultIsZero) {
  const Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, NormalizesNegativeDenominator) {
  const Rational r(3, -6);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
  EXPECT_TRUE(r.is_negative());
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), RationalError);
}

TEST(Rational, ImplicitFromInteger) {
  const Rational r = 7;
  EXPECT_TRUE(r.is_integer());
  EXPECT_EQ(r, Rational(7, 1));
}

TEST(Rational, Addition) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) + Rational(-1, 2), Rational(0));
}

TEST(Rational, Subtraction) {
  EXPECT_EQ(Rational(3, 4) - Rational(1, 4), Rational(1, 2));
}

TEST(Rational, Multiplication) {
  EXPECT_EQ(Rational(2, 3) * Rational(9, 4), Rational(3, 2));
}

TEST(Rational, Division) {
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_THROW(Rational(1) / Rational(0), RationalError);
}

TEST(Rational, ComparisonIsExact) {
  EXPECT_LT(Rational(1, 3), Rational(34, 100));
  EXPECT_GT(Rational(2, 3), Rational(66, 100));
  EXPECT_LT(Rational(-1, 2), Rational(1, 2));
}

TEST(Rational, ComparisonNeverThrowsNearInt64Overflow) {
  // Ordering is used to *rank* (schedule makespans, hyperperiods), so it
  // must stay total where the arithmetic operators throw: cross products
  // of canonical values with coprime denominators can exceed 64 bits.
  const std::int64_t huge = std::numeric_limits<std::int64_t>::max();
  const Rational a(huge - 1, 3);
  const Rational b(huge - 2, 2);
  EXPECT_LT(a, b);  // (huge-1)/3 < (huge-2)/2, exactly
  EXPECT_GT(b, a);
  EXPECT_LT(Rational(-huge, 3), Rational(huge, 2));
  EXPECT_LT(Rational(huge - 1, 2), Rational(huge, 2));
  EXPECT_FALSE(Rational(huge, 2) < Rational(huge, 2));
  // The same values still overflow loudly under addition — the guard is
  // about arithmetic wrapping, not ordering.
  EXPECT_THROW((void)(a + b), RationalError);
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, FloorDiv) {
  EXPECT_EQ(Rational::floor_div(Rational(7), Rational(2)), 3);
  EXPECT_EQ(Rational::floor_div(Rational(700), Rational(200)), 3);
  EXPECT_EQ(Rational::floor_div(Rational(1, 2), Rational(1, 3)), 1);
  EXPECT_THROW((void)Rational::floor_div(Rational(1), Rational(0)), RationalError);
  EXPECT_THROW((void)Rational::floor_div(Rational(1), Rational(-1)), RationalError);
}

TEST(Rational, LcmOfIntegers) {
  // The hyperperiod operator on whole-millisecond periods.
  EXPECT_EQ(Rational::lcm(Rational(200), Rational(700)), Rational(1400));
  EXPECT_EQ(Rational::lcm(Rational(200), Rational(5000)), Rational(5000));
}

TEST(Rational, LcmOfFractions) {
  // Footnote 4: lcm over rationals. lcm(1/2, 1/3) = 1; lcm(3/4, 1/2) = 3/2.
  EXPECT_EQ(Rational::lcm(Rational(1, 2), Rational(1, 3)), Rational(1));
  EXPECT_EQ(Rational::lcm(Rational(3, 4), Rational(1, 2)), Rational(3, 2));
}

TEST(Rational, LcmRequiresPositive) {
  EXPECT_THROW((void)Rational::lcm(Rational(0), Rational(1)), RationalError);
  EXPECT_THROW((void)Rational::lcm(Rational(-1), Rational(1)), RationalError);
}

TEST(Rational, GcdOfFractions) {
  EXPECT_EQ(Rational::gcd(Rational(1, 2), Rational(1, 3)), Rational(1, 6));
  EXPECT_EQ(Rational::gcd(Rational(0), Rational(5)), Rational(5));
}

TEST(Rational, FmsHyperperiods) {
  // The exact hyperperiods of §V-B: original 40 s, reduced 10 s.
  const Rational original = Rational::lcm(
      Rational::lcm(Rational(200), Rational(5000)),
      Rational::lcm(Rational(1600), Rational(1000)));
  EXPECT_EQ(original, Rational(40000));
  const Rational reduced = Rational::lcm(
      Rational::lcm(Rational(200), Rational(5000)),
      Rational::lcm(Rational(400), Rational(1000)));
  EXPECT_EQ(reduced, Rational(10000));
}

TEST(Rational, ToStringAndDouble) {
  EXPECT_EQ(Rational(7, 3).to_string(), "7/3");
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
}

TEST(Rational, AbsMinMax) {
  EXPECT_EQ(Rational::abs(Rational(-3, 2)), Rational(3, 2));
  EXPECT_EQ(Rational::min(Rational(1, 3), Rational(1, 4)), Rational(1, 4));
  EXPECT_EQ(Rational::max(Rational(1, 3), Rational(1, 4)), Rational(1, 3));
}

TEST(Rational, HashEqualValuesCollide) {
  const std::hash<Rational> h;
  EXPECT_EQ(h(Rational(2, 4)), h(Rational(1, 2)));
  std::unordered_set<Rational> set{Rational(1, 2), Rational(2, 4), Rational(3)};
  EXPECT_EQ(set.size(), 2u);
}

TEST(Rational, OverflowDetected) {
  const Rational big(std::int64_t{1} << 62);
  EXPECT_THROW(big * big, RationalError);
  EXPECT_THROW(big + big, RationalError);
}

TEST(Rational, UnaryMinus) {
  EXPECT_EQ(-Rational(3, 7), Rational(-3, 7));
  EXPECT_EQ(-Rational(0), Rational(0));
}

}  // namespace
}  // namespace fppn
