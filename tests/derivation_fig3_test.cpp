// Exact reproduction of Fig. 3 of the paper: the task graph derived from
// the Fig. 1 process network with uniform 25 ms WCETs.
//
// The paper states (Fig. 3 + §III-A text):
//  - hyperperiod H = 200 ms,
//  - every process contributes m_p * H / T_p jobs; CoefB, served at its
//    user's (FilterB) period 200 instead of its own 700, contributes 2;
//    10 jobs total,
//  - job tuples (A, D, C): InputA[1](0,200,25) FilterA[1](0,100,25)
//    FilterA[2](100,200,25) FilterB[1](0,200,25) NormA[1](0,200,25)
//    OutputA[1](0,200,25) OutputB[1](0,100,25) OutputB[2](100,200,25)
//    CoefB[1](0,200,25) CoefB[2](0,200,25),
//  - the CoefB server deadline is corrected to 700 - 200 = 500 and then
//    truncated to H = 200,
//  - the server jobs CoefB[1], CoefB[2] arrive at 0 in one subset and have
//    a precedence edge to FilterB[1] (via CoefB[2] after reduction),
//  - InputA is joined to FilterA and NormA, but the InputA -> NormA edge
//    is redundant (path through FilterA) and removed by reduction.
#include <gtest/gtest.h>

#include "apps/fig1.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

using apps::build_fig1;
using apps::Fig1App;

class Fig3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = build_fig1();
    derived_ = derive_task_graph(app_.net, app_.fig3_wcets());
  }

  [[nodiscard]] JobId job(const std::string& name) const {
    const auto id = derived_.graph.find(name);
    EXPECT_TRUE(id.has_value()) << "missing job " << name;
    return id.value_or(JobId());
  }

  [[nodiscard]] bool edge(const std::string& from, const std::string& to) const {
    return derived_.graph.has_edge(job(from), job(to));
  }

  Fig1App app_;
  DerivedTaskGraph derived_;
};

TEST_F(Fig3Test, HyperperiodIs200) {
  EXPECT_EQ(derived_.hyperperiod, Duration::ms(200));
  EXPECT_EQ(app_.net.hyperperiod(), Duration::ms(200));
}

TEST_F(Fig3Test, TenJobsTotal) { EXPECT_EQ(derived_.graph.job_count(), 10u); }

TEST_F(Fig3Test, JobCountsPerProcess) {
  // m_p * H / T_p vertices per process (CoefB at its server period 200).
  EXPECT_EQ(derived_.graph.jobs_of(app_.input_a).size(), 1u);
  EXPECT_EQ(derived_.graph.jobs_of(app_.filter_a).size(), 2u);
  EXPECT_EQ(derived_.graph.jobs_of(app_.filter_b).size(), 1u);
  EXPECT_EQ(derived_.graph.jobs_of(app_.norm_a).size(), 1u);
  EXPECT_EQ(derived_.graph.jobs_of(app_.output_a).size(), 1u);
  EXPECT_EQ(derived_.graph.jobs_of(app_.output_b).size(), 2u);
  EXPECT_EQ(derived_.graph.jobs_of(app_.coef_b).size(), 2u);
}

TEST_F(Fig3Test, JobTuplesMatchFigure) {
  const auto check = [this](const std::string& name, std::int64_t a, std::int64_t d) {
    const Job& j = derived_.graph.job(job(name));
    EXPECT_EQ(j.arrival, Time::ms(a)) << name;
    EXPECT_EQ(j.deadline, Time::ms(d)) << name;
    EXPECT_EQ(j.wcet, Duration::ms(25)) << name;
  };
  check("InputA[1]", 0, 200);
  check("FilterA[1]", 0, 100);
  check("FilterA[2]", 100, 200);
  check("FilterB[1]", 0, 200);
  check("NormA[1]", 0, 200);
  check("OutputA[1]", 0, 200);
  check("OutputB[1]", 0, 100);
  check("OutputB[2]", 100, 200);
  check("CoefB[1]", 0, 200);  // 0 + (700-200) = 500, truncated to H = 200
  check("CoefB[2]", 0, 200);
}

TEST_F(Fig3Test, CoefBServerTransformation) {
  const ServerInfo& info = derived_.servers.at(app_.coef_b);
  EXPECT_EQ(info.user, app_.filter_b);
  EXPECT_EQ(info.burst, 2);
  EXPECT_EQ(info.server_period, Duration::ms(200));
  EXPECT_EQ(info.corrected_deadline, Duration::ms(500));
  EXPECT_TRUE(info.priority_over_user);  // CoefB -> FilterB in Fig. 1
  // Both server jobs are in subset 1 (same user period boundary 0).
  EXPECT_EQ(derived_.graph.job(job("CoefB[1]")).subset, 1);
  EXPECT_EQ(derived_.graph.job(job("CoefB[2]")).subset, 1);
  EXPECT_TRUE(derived_.graph.job(job("CoefB[1]")).is_server);
}

TEST_F(Fig3Test, ServerJobsPrecedeUserJob) {
  // "jobs CoefB[1] and CoefB[2] ... arrive at time 0 and have precedence
  // edge to FilterB[1]" — after reduction the chain is
  // CoefB[1] -> CoefB[2] -> FilterB[1].
  EXPECT_TRUE(edge("CoefB[1]", "CoefB[2]"));
  EXPECT_TRUE(edge("CoefB[2]", "FilterB[1]"));
  EXPECT_FALSE(edge("CoefB[1]", "FilterB[1]"));  // redundant, reduced away
}

TEST_F(Fig3Test, RedundantInputAToNormAEdgeRemoved) {
  // "InputA has priority over FilterA and NormA, and hence it is joined to
  // both of them. However, in the latter case the edge is redundant due to
  // a path from InputA to NormA."
  EXPECT_TRUE(edge("InputA[1]", "FilterA[1]"));
  EXPECT_FALSE(edge("InputA[1]", "NormA[1]"));
  // The path that makes it redundant still exists.
  EXPECT_TRUE(edge("FilterA[1]", "NormA[1]"));
  EXPECT_GE(derived_.edges_removed, 1u);
}

TEST_F(Fig3Test, ExactReducedEdgeSet) {
  // The full derived edge set after transitive reduction, per the §III-A
  // edge rule applied to our Fig. 1 reconstruction (see DESIGN.md).
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"InputA[1]", "FilterA[1]"},  {"InputA[1]", "FilterB[1]"},
      {"FilterA[1]", "NormA[1]"},   {"FilterA[1]", "OutputB[1]"},
      {"NormA[1]", "OutputA[1]"},   {"NormA[1]", "FilterA[2]"},
      {"FilterB[1]", "OutputB[1]"}, {"CoefB[1]", "CoefB[2]"},
      {"CoefB[2]", "FilterB[1]"},   {"OutputB[1]", "FilterA[2]"},
      {"FilterA[2]", "OutputB[2]"},
  };
  for (const auto& [from, to] : expected) {
    EXPECT_TRUE(edge(from, to)) << from << " -> " << to;
  }
  EXPECT_EQ(derived_.graph.edge_count(), expected.size());
}

TEST_F(Fig3Test, GraphIsAcyclicAndOrdered) {
  EXPECT_TRUE(derived_.graph.is_acyclic());
  // Jobs are stored in <J order: every edge goes forward.
  for (const auto& [u, v] : derived_.graph.precedence().edges()) {
    EXPECT_LT(u.value(), v.value());
  }
}

TEST_F(Fig3Test, UntruncatedDeadlineShowsCorrection) {
  DerivationOptions opts;
  opts.truncate_deadlines = false;
  const auto raw = derive_task_graph(app_.net, app_.fig3_wcets(), opts);
  const auto id = raw.graph.find("CoefB[1]");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(raw.graph.job(*id).deadline, Time::ms(500));  // 0 + (700 - 200)
}

TEST_F(Fig3Test, LoadAndNecessaryCondition) {
  // 10 jobs x 25 ms over a 200 ms frame: the deadline structure makes the
  // graph need 2 processors (Prop. 3.1 gives the ceil(load) lower bound).
  const LoadResult load = task_graph_load(derived_.graph);
  EXPECT_GT(load.load, Rational(1));
  EXPECT_LE(load.load, Rational(2));
  const NecessaryCondition nc1 = check_necessary_condition(derived_.graph, 1);
  EXPECT_FALSE(nc1.holds());
  const NecessaryCondition nc2 = check_necessary_condition(derived_.graph, 2);
  EXPECT_TRUE(nc2.holds()) << nc2.to_string(derived_.graph);
}

}  // namespace
}  // namespace fppn
