#include "sched/search.hpp"

#include <gtest/gtest.h>

#include "apps/fft.hpp"

namespace fppn {
namespace {

Job make_job(const std::string& name, std::int64_t a, std::int64_t d, std::int64_t c) {
  Job j;
  j.process = ProcessId{0};
  j.arrival = Time::ms(a);
  j.deadline = Time::ms(d);
  j.wcet = Duration::ms(c);
  j.name = name;
  return j;
}

TEST(Search, SingleJobNeedsOneProcessor) {
  TaskGraph tg;
  tg.add_job(make_job("A", 0, 100, 10));
  const auto result = min_processors(tg);
  EXPECT_EQ(result.processors, 1);
  EXPECT_EQ(result.lower_bound, 1);
}

TEST(Search, ParallelSlabNeedsMany) {
  // Eight independent (0,100,100) jobs: exactly 8 processors.
  TaskGraph tg;
  for (int i = 0; i < 8; ++i) {
    tg.add_job(make_job("J" + std::to_string(i), 0, 100, 100));
  }
  const auto result = min_processors(tg);
  EXPECT_EQ(result.lower_bound, 8);
  EXPECT_EQ(result.processors, 8);
}

TEST(Search, InfeasibleGraphReportsZero) {
  // A job that cannot fit its own window on any processor count.
  TaskGraph tg;
  tg.add_job(make_job("A", 0, 50, 100));
  const auto result = min_processors(tg, 4);
  EXPECT_EQ(result.processors, 0);
}

TEST(Search, LimitRespected) {
  TaskGraph tg;
  for (int i = 0; i < 4; ++i) {
    tg.add_job(make_job("J" + std::to_string(i), 0, 100, 100));
  }
  const auto result = min_processors(tg, 2);  // needs 4 > limit
  EXPECT_EQ(result.processors, 0);
  EXPECT_EQ(result.lower_bound, 4);
}

TEST(Search, BestScheduleReturnsLeastViolatingWhenInfeasible) {
  TaskGraph tg;
  tg.add_job(make_job("A", 0, 10, 50));  // hopeless
  const ScheduleAttempt attempt = best_schedule(tg, 1);
  EXPECT_FALSE(attempt.feasible);
  EXPECT_EQ(attempt.makespan, Time::ms(50));
}

TEST(Search, FftNeedsTwoProcessorsWithOverheadJob) {
  // §V-A in miniature: the FFT graph alone fits one processor; with the
  // 41 ms frame-overhead job prepended it needs two.
  const auto app = apps::build_fft(8);
  const WcetMap wcets = app.uniform_wcets(Duration::ratio_ms(40, 3));
  auto derived = derive_task_graph(app.net, wcets);

  const auto plain = min_processors(derived.graph);
  EXPECT_EQ(plain.processors, 1);

  // Model the measured arrival-management overhead as an extra job with a
  // precedence edge directed to the generator (exactly the paper's model).
  Job overhead;
  overhead.process = ProcessId{app.net.process_count()};
  overhead.arrival = Time::ms(0);
  overhead.deadline = Time::ms(200);
  overhead.wcet = Duration::ms(41);
  overhead.name = "RT-overhead";
  const JobId oid = derived.graph.add_job(overhead);
  const auto gen = derived.graph.find("generator[1]");
  ASSERT_TRUE(gen.has_value());
  derived.graph.add_edge(oid, *gen);

  const auto loaded = min_processors(derived.graph);
  EXPECT_EQ(loaded.processors, 2);
  EXPECT_GT(task_graph_load(derived.graph).load, Rational(1));
}

}  // namespace
}  // namespace fppn
