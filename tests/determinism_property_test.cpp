// Property tests for Prop. 2.1 (functional determinism): the channel
// histories are a function of the event time stamps and the input data —
// independent of the simultaneity tie-break between FP-unrelated
// processes, of sporadic timing jitter only when time stamps are equal,
// and reproducible across repeated executions.
#include <gtest/gtest.h>

#include "apps/fig1.hpp"
#include "apps/fms.hpp"
#include "fppn/semantics.hpp"

namespace fppn {
namespace {

using apps::build_fig1;
using apps::build_fms;

class Fig1DeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fig1DeterminismTest, TieBreakDoesNotAffectHistories) {
  const auto app = build_fig1();
  const std::uint64_t seed = GetParam();
  std::map<ProcessId, SporadicScript> scripts;
  scripts.emplace(app.coef_b, SporadicScript::random(2, Duration::ms(700),
                                                     Time::ms(1400), seed));
  const InvocationPlan plan =
      InvocationPlan::build(app.net, Time::ms(1400), scripts);
  std::vector<double> samples(8);
  std::vector<double> coefs(32);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = static_cast<double>((seed + i) % 17) - 8.0;
  }
  for (std::size_t i = 0; i < coefs.size(); ++i) {
    coefs[i] = 0.5 + static_cast<double>(i % 5);
  }
  const InputScripts inputs = app.make_inputs(samples, coefs);

  const auto fwd =
      run_zero_delay(app.net, plan, inputs, SimultaneityTieBreak::kByProcessId);
  const auto rev = run_zero_delay(app.net, plan, inputs,
                                  SimultaneityTieBreak::kByReverseProcessId);
  EXPECT_TRUE(fwd.histories.functionally_equal(rev.histories))
      << fwd.histories.diff(rev.histories, app.net);
  EXPECT_EQ(fwd.histories.fingerprint(), rev.histories.fingerprint());
  EXPECT_EQ(fwd.jobs_executed, rev.jobs_executed);
}

TEST_P(Fig1DeterminismTest, RepeatedRunsReproduceExactly) {
  const auto app = build_fig1();
  const std::uint64_t seed = GetParam();
  std::map<ProcessId, SporadicScript> scripts;
  scripts.emplace(app.coef_b, SporadicScript::random(2, Duration::ms(700),
                                                     Time::ms(2800), seed * 31 + 1));
  const InvocationPlan plan =
      InvocationPlan::build(app.net, Time::ms(2800), scripts);
  const InputScripts inputs =
      app.make_inputs({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14},
                      std::vector<double>(40, 2.0));
  const auto first = run_zero_delay(app.net, plan, inputs);
  const auto second = run_zero_delay(app.net, plan, inputs);
  EXPECT_TRUE(first.histories.functionally_equal(second.histories));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fig1DeterminismTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

class FmsDeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FmsDeterminismTest, TieBreakDoesNotAffectHistories) {
  const auto app = build_fms();
  const std::uint64_t seed = GetParam();
  const Time horizon = Time::ms(2000);  // two 1 s prefixes of the frame
  const auto scripts = app.random_commands(horizon, seed);
  const InvocationPlan plan = InvocationPlan::build(app.net, horizon, scripts);
  const InputScripts inputs = app.make_inputs(10, seed);
  const auto fwd =
      run_zero_delay(app.net, plan, inputs, SimultaneityTieBreak::kByProcessId);
  const auto rev = run_zero_delay(app.net, plan, inputs,
                                  SimultaneityTieBreak::kByReverseProcessId);
  EXPECT_TRUE(fwd.histories.functionally_equal(rev.histories))
      << fwd.histories.diff(rev.histories, app.net);
}

TEST_P(FmsDeterminismTest, OutputsDependOnlyOnInputsAndTimestamps) {
  // Same time stamps, same inputs -> same outputs; different inputs ->
  // (generically) different outputs. Both directions of Prop. 2.1's
  // "function of" claim, sampled.
  const auto app = build_fms();
  const std::uint64_t seed = GetParam();
  const Time horizon = Time::ms(1000);
  const auto scripts = app.random_commands(horizon, seed);
  const InvocationPlan plan = InvocationPlan::build(app.net, horizon, scripts);

  const auto r1 = run_zero_delay(app.net, plan, app.make_inputs(5, seed));
  const auto r2 = run_zero_delay(app.net, plan, app.make_inputs(5, seed));
  const auto r3 = run_zero_delay(app.net, plan, app.make_inputs(5, seed + 1000));
  EXPECT_TRUE(r1.histories.functionally_equal(r2.histories));
  EXPECT_FALSE(r1.histories.functionally_equal(r3.histories))
      << "distinct sensor streams should alter the BCP history";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmsDeterminismTest,
                         ::testing::Values(2, 4, 6, 10, 12, 14, 16, 18));

TEST(Determinism, SporadicTimingChangesOutputsOnlyViaTimestamps) {
  // Moving a sporadic invocation to a different instant is a *different*
  // input per Prop. 2.1 — outputs may change; equal scripts must not.
  const auto app = build_fig1();
  const InputScripts inputs =
      app.make_inputs({1, 2, 3, 4, 5, 6, 7}, {2.0, 3.0, 4.0});

  std::map<ProcessId, SporadicScript> early;
  early.emplace(app.coef_b,
                SporadicScript({Time::ms(10)}, 2, Duration::ms(700)));
  std::map<ProcessId, SporadicScript> late;
  late.emplace(app.coef_b,
               SporadicScript({Time::ms(410)}, 2, Duration::ms(700)));

  const auto r_early = run_zero_delay(
      app.net, InvocationPlan::build(app.net, Time::ms(1400), early), inputs);
  const auto r_early2 = run_zero_delay(
      app.net, InvocationPlan::build(app.net, Time::ms(1400), early), inputs);
  const auto r_late = run_zero_delay(
      app.net, InvocationPlan::build(app.net, Time::ms(1400), late), inputs);

  EXPECT_TRUE(r_early.histories.functionally_equal(r_early2.histories));
  // The coefficient lands before FilterB[1] vs before FilterB[3]: the
  // FilterB output history must differ.
  const ChannelId fb_out = *app.net.find_channel("fB_outB");
  EXPECT_NE(r_early.histories.channel_writes.at(fb_out),
            r_late.histories.channel_writes.at(fb_out));
}

}  // namespace
}  // namespace fppn
