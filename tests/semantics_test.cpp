// Zero-delay semantics (§II-B): trace construction, FP-ordering of
// simultaneous invocations, and the worked example from the paper's text:
//   alpha = w(0), x?[1]I1, x := x^2, x!c1, w(100), y?c1, O1![2]y
#include "fppn/semantics.hpp"

#include <gtest/gtest.h>

namespace fppn {
namespace {

TEST(OrderSimultaneous, RespectsFunctionalPriority) {
  NetworkBuilder b;
  const ProcessId hi =
      b.periodic("hi", Duration::ms(100), Duration::ms(100), no_op_behavior());
  const ProcessId lo =
      b.periodic("lo", Duration::ms(100), Duration::ms(100), no_op_behavior());
  b.priority(hi, lo);
  const Network net = std::move(b).build();
  const auto order = order_simultaneous(net, {lo, hi});
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], hi);
  EXPECT_EQ(order[1], lo);
}

TEST(OrderSimultaneous, BurstsStayAdjacent) {
  NetworkBuilder b;
  const ProcessId hi =
      b.periodic("hi", Duration::ms(100), Duration::ms(100), no_op_behavior());
  const ProcessId lo =
      b.periodic("lo", Duration::ms(100), Duration::ms(100), no_op_behavior());
  b.priority(hi, lo);
  const Network net = std::move(b).build();
  const auto order = order_simultaneous(net, {lo, hi, hi, hi});
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], hi);
  EXPECT_EQ(order[1], hi);
  EXPECT_EQ(order[2], hi);
  EXPECT_EQ(order[3], lo);
}

TEST(OrderSimultaneous, TieBreakOnlyAffectsUnrelated) {
  NetworkBuilder b;
  const ProcessId a =
      b.periodic("a", Duration::ms(100), Duration::ms(100), no_op_behavior());
  const ProcessId c =
      b.periodic("c", Duration::ms(100), Duration::ms(100), no_op_behavior());
  const Network net = std::move(b).build();
  const auto fwd = order_simultaneous(net, {a, c}, SimultaneityTieBreak::kByProcessId);
  const auto rev =
      order_simultaneous(net, {a, c}, SimultaneityTieBreak::kByReverseProcessId);
  EXPECT_EQ(fwd[0], a);
  EXPECT_EQ(rev[0], c);
}

// The paper's §II-A example trace: a producer squares input sample [1] at
// time 0 and writes it to c1; at time 100 a consumer reads c1 and emits
// output sample [2... (here [1]).
TEST(ZeroDelay, PaperExampleTrace) {
  NetworkBuilder b;
  const ProcessId prod = b.periodic("prod", Duration::ms(200), Duration::ms(200),
                                    behavior([](JobContext& ctx) {
                                      const Value x = ctx.read("I1");
                                      const double v =
                                          has_data(x) ? std::get<double>(x) : 0.0;
                                      ctx.write("c1", v * v);
                                    }));
  const ProcessId cons = b.periodic("cons", Duration::ms(200), Duration::ms(200),
                                    behavior([](JobContext& ctx) {
                                      ctx.write("O1", ctx.read("c1"));
                                    }));
  b.fifo("c1", prod, cons);
  b.priority(prod, cons);
  const ChannelId i1 = b.external_input("I1", prod);
  const ChannelId o1 = b.external_output("O1", cons);
  const Network net = std::move(b).build();

  InvocationPlan plan;
  plan.add(Time::ms(0), prod);
  plan.add(Time::ms(100), cons);
  InputScripts inputs;
  inputs.emplace(i1, std::vector<Value>{Value{5.0}});

  const ZeroDelayResult r = run_zero_delay(net, plan, inputs);
  EXPECT_EQ(r.jobs_executed, 2u);
  const auto& samples = r.histories.output_samples.at(o1);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].value, Value{25.0});
  EXPECT_EQ(samples[0].time, Time::ms(100));

  const std::string trace = trace_to_string(r.trace, net, false);
  // w(0) ... read(I1)=5 ... write(c1)=25 w(100) ... read(c1)=25 ... write(O1)=25
  EXPECT_NE(trace.find("w(0)"), std::string::npos);
  EXPECT_NE(trace.find("prod[1]:read(I1)=5"), std::string::npos);
  EXPECT_NE(trace.find("prod[1]:write(c1)=25"), std::string::npos);
  EXPECT_NE(trace.find("w(100)"), std::string::npos);
  EXPECT_NE(trace.find("cons[1]:read(c1)=25"), std::string::npos);
  EXPECT_NE(trace.find("cons[1]:write(O1)=25"), std::string::npos);
}

TEST(ZeroDelay, PriorityDecidesValueSeenOnBlackboard) {
  // Writer and reader invoked simultaneously: FP decides whether the
  // reader sees this round's value or the previous one.
  const auto build = [](bool writer_first, ChannelId* out_chan) {
    NetworkBuilder b;
    const ProcessId w = b.periodic("w", Duration::ms(100), Duration::ms(100),
                                   behavior([](JobContext& ctx) {
                                     ctx.write("bb",
                                               Value{static_cast<double>(
                                                   ctx.job_index())});
                                   }));
    const ProcessId r = b.periodic("r", Duration::ms(100), Duration::ms(100),
                                   behavior([](JobContext& ctx) {
                                     ctx.write("O", ctx.read("bb"));
                                   }));
    b.blackboard("bb", w, r);
    if (writer_first) {
      b.priority(w, r);
    } else {
      b.priority(r, w);
    }
    *out_chan = b.external_output("O", r);
    return std::move(b).build();
  };

  ChannelId out1, out2;
  const Network net_wf = build(true, &out1);
  const Network net_rf = build(false, &out2);
  const InvocationPlan plan_wf = InvocationPlan::build(net_wf, Time::ms(200));
  const InvocationPlan plan_rf = InvocationPlan::build(net_rf, Time::ms(200));

  const auto r_wf = run_zero_delay(net_wf, plan_wf);
  const auto r_rf = run_zero_delay(net_rf, plan_rf);
  // Writer first: reader sees 1 then 2. Reader first: none then 1.
  EXPECT_EQ(r_wf.histories.output_samples.at(out1)[0].value, Value{1.0});
  EXPECT_EQ(r_wf.histories.output_samples.at(out1)[1].value, Value{2.0});
  EXPECT_EQ(r_rf.histories.output_samples.at(out2)[0].value, no_data());
  EXPECT_EQ(r_rf.histories.output_samples.at(out2)[1].value, Value{1.0});
}

TEST(ZeroDelay, FifoBuffersAcrossRates) {
  // Fast writer (100 ms), slow reader (200 ms): FIFO accumulates; reads
  // drain one per reader job.
  NetworkBuilder b;
  const ProcessId w = b.periodic("w", Duration::ms(100), Duration::ms(100),
                                 behavior([](JobContext& ctx) {
                                   ctx.write("q", Value{ctx.job_index()});
                                 }));
  const ProcessId r = b.periodic("r", Duration::ms(200), Duration::ms(200),
                                 behavior([](JobContext& ctx) {
                                   ctx.write("O", ctx.read("q"));
                                 }));
  b.fifo("q", w, r);
  b.priority(w, r);
  const ChannelId o = b.external_output("O", r);
  const Network net = std::move(b).build();
  const auto res =
      run_zero_delay(net, InvocationPlan::build(net, Time::ms(600)));
  const auto& samples = res.histories.output_samples.at(o);
  // Reader at 0, 200, 400 sees 1, 2, 4 (writer wrote 1; 2,3; 4,5... reads
  // drain in FIFO order: 1, then 2, then 3? — at t=200 the queue holds
  // [2,3] after job 1 consumed 1... reader takes the head each time).
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].value, Value{std::int64_t{1}});
  EXPECT_EQ(samples[1].value, Value{std::int64_t{2}});
  EXPECT_EQ(samples[2].value, Value{std::int64_t{3}});
}

TEST(ZeroDelay, EmptyPlanProducesEmptyTrace) {
  NetworkBuilder b;
  b.periodic("p", Duration::ms(100), Duration::ms(100), no_op_behavior());
  const Network net = std::move(b).build();
  const auto res = run_zero_delay(net, InvocationPlan{});
  EXPECT_EQ(res.jobs_executed, 0u);
  EXPECT_TRUE(res.trace.empty());
}

}  // namespace
}  // namespace fppn
