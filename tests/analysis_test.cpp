// ASAP/ALAP times, the precedence-aware load metric and Prop. 3.1.
#include "taskgraph/analysis.hpp"

#include <gtest/gtest.h>

namespace fppn {
namespace {

Job make_job(const std::string& name, std::int64_t a, std::int64_t d, std::int64_t c) {
  Job j;
  j.process = ProcessId{0};
  j.arrival = Time::ms(a);
  j.deadline = Time::ms(d);
  j.wcet = Duration::ms(c);
  j.name = name;
  return j;
}

/// chain A(0,100,10) -> B(0,100,20) -> C(50,100,30)
TaskGraph chain() {
  TaskGraph tg;
  const JobId a = tg.add_job(make_job("A", 0, 100, 10));
  const JobId b = tg.add_job(make_job("B", 0, 100, 20));
  const JobId c = tg.add_job(make_job("C", 50, 100, 30));
  tg.add_edge(a, b);
  tg.add_edge(b, c);
  return tg;
}

TEST(AsapAlap, ChainRecursions) {
  const TaskGraph tg = chain();
  const auto asap = asap_times(tg);
  EXPECT_EQ(asap[0], Time::ms(0));
  EXPECT_EQ(asap[1], Time::ms(10));   // after A
  EXPECT_EQ(asap[2], Time::ms(50));   // max(own arrival 50, B end 30)
  const auto alap = alap_times(tg);
  EXPECT_EQ(alap[2], Time::ms(100));
  EXPECT_EQ(alap[1], Time::ms(70));   // 100 - 30
  EXPECT_EQ(alap[0], Time::ms(50));   // 70 - 20
}

TEST(AsapAlap, IndependentJobsKeepOwnBounds) {
  TaskGraph tg;
  tg.add_job(make_job("A", 5, 50, 10));
  tg.add_job(make_job("B", 7, 60, 10));
  const auto asap = asap_times(tg);
  const auto alap = alap_times(tg);
  EXPECT_EQ(asap[0], Time::ms(5));
  EXPECT_EQ(alap[1], Time::ms(60));
}

TEST(Load, SingleJob) {
  TaskGraph tg;
  tg.add_job(make_job("A", 0, 100, 50));
  const LoadResult load = task_graph_load(tg);
  EXPECT_EQ(load.load, Rational(1, 2));
  EXPECT_EQ(load.window_start, Time::ms(0));
  EXPECT_EQ(load.window_end, Time::ms(100));
  EXPECT_EQ(load.min_processors(), 1);
}

TEST(Load, PrecedenceTightensWindows) {
  // Two independent jobs (0,100,40): load 0.8. Chained, the windows
  // squeeze: A in [0,60], B in [40,100] — the [0,100] window still holds
  // both: load stays 0.8, but each fits (Prop. 3.1 holds on 1 processor).
  TaskGraph tg;
  const JobId a = tg.add_job(make_job("A", 0, 100, 40));
  const JobId b = tg.add_job(make_job("B", 0, 100, 40));
  tg.add_edge(a, b);
  const LoadResult load = task_graph_load(tg);
  EXPECT_EQ(load.load, Rational(4, 5));
  EXPECT_TRUE(check_necessary_condition(tg, 1).holds());
}

TEST(Load, ParallelWorkNeedsMoreProcessors) {
  // Three jobs (0,100,60) with no precedences: load 1.8 -> >= 2 processors.
  TaskGraph tg;
  tg.add_job(make_job("A", 0, 100, 60));
  tg.add_job(make_job("B", 0, 100, 60));
  tg.add_job(make_job("C", 0, 100, 60));
  const LoadResult load = task_graph_load(tg);
  EXPECT_EQ(load.load, Rational(9, 5));
  EXPECT_EQ(load.min_processors(), 2);
  EXPECT_FALSE(check_necessary_condition(tg, 1).holds());
  EXPECT_TRUE(check_necessary_condition(tg, 2).holds());
}

TEST(Load, NarrowWindowDominates) {
  // A tight cluster inside a long frame: the maximizing window is the
  // cluster's, not the frame's.
  TaskGraph tg;
  tg.add_job(make_job("A", 0, 1000, 10));
  tg.add_job(make_job("T1", 100, 150, 30));
  tg.add_job(make_job("T2", 100, 150, 30));
  const LoadResult load = task_graph_load(tg);
  EXPECT_EQ(load.window_start, Time::ms(100));
  EXPECT_EQ(load.window_end, Time::ms(150));
  EXPECT_EQ(load.load, Rational(60, 50));
}

TEST(Load, EmptyGraphIsZero) {
  const TaskGraph tg;
  EXPECT_EQ(task_graph_load(tg).load, Rational(0));
  EXPECT_EQ(task_graph_load(tg).min_processors(), 0);
}

TEST(NecessaryCondition, WindowFitViolation) {
  // A job that cannot fit between its ASAP and ALAP bounds.
  TaskGraph tg;
  const JobId a = tg.add_job(make_job("A", 0, 100, 60));
  const JobId b = tg.add_job(make_job("B", 0, 100, 60));
  tg.add_edge(a, b);
  const NecessaryCondition nc = check_necessary_condition(tg, 4);
  EXPECT_FALSE(nc.holds());
  EXPECT_FALSE(nc.window_fit);
  ASSERT_TRUE(nc.first_unfit_job.has_value());
  const std::string report = nc.to_string(tg);
  EXPECT_NE(report.find("VIOLATED"), std::string::npos);
}

TEST(NecessaryCondition, ReportMentionsLoad) {
  TaskGraph tg;
  tg.add_job(make_job("A", 0, 100, 50));
  const NecessaryCondition nc = check_necessary_condition(tg, 1);
  EXPECT_TRUE(nc.holds());
  EXPECT_NE(nc.to_string(tg).find("load=1/2"), std::string::npos);
}

TEST(CriticalPath, ChainLength) {
  EXPECT_EQ(critical_path_length(chain()), Duration::ms(80));  // ends at 80
}

TEST(CriticalPath, RespectsArrivals) {
  TaskGraph tg;
  tg.add_job(make_job("late", 500, 600, 10));
  EXPECT_EQ(critical_path_length(tg), Duration::ms(510));
}

TEST(AsapAlap, CyclicGraphRejected) {
  TaskGraph tg;
  const JobId a = tg.add_job(make_job("A", 0, 100, 1));
  const JobId b = tg.add_job(make_job("B", 0, 100, 1));
  tg.add_edge(a, b);
  tg.add_edge(b, a);
  EXPECT_THROW(asap_times(tg), std::invalid_argument);
  EXPECT_THROW(alap_times(tg), std::invalid_argument);
}

}  // namespace
}  // namespace fppn
