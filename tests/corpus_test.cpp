// The checked-in seed corpus (tests/corpus/*.fppn): one generated
// scenario per family, committed in the repro wire format. Replaying it
// pins two contracts at once — the differential checks stay clean on
// known-good inputs, and the text format keeps parsing scenarios written
// by earlier versions of the generator (format drift breaks this test,
// not a user's saved repro).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "gen/fuzz.hpp"

#ifndef FPPN_TEST_SOURCE_DIR
#error "FPPN_TEST_SOURCE_DIR must point at the tests/ source directory"
#endif

namespace fppn::gen {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  const fs::path dir = fs::path(FPPN_TEST_SOURCE_DIR) / "corpus";
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".fppn") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Corpus, CoversEveryFamily) {
  std::set<std::string> stems;
  for (const std::string& file : corpus_files()) {
    const std::string stem = fs::path(file).stem().string();
    stems.insert(stem.substr(0, stem.rfind('-')));
  }
  for (const Family family : all_families()) {
    EXPECT_TRUE(stems.count(to_string(family)))
        << "no corpus entry for family " << to_string(family);
  }
}

TEST(Corpus, EveryEntryReplaysClean) {
  FuzzConfig cfg;
  cfg.max_iterations = 60;
  cfg.restarts = 1;
  const std::vector<std::string> files = corpus_files();
  ASSERT_FALSE(files.empty());
  for (const std::string& file : files) {
    const ReplayOutcome outcome = replay_repro(file, cfg);
    EXPECT_TRUE(outcome.expected_check.empty()) << file;
    EXPECT_FALSE(outcome.verdict.mismatch.has_value())
        << file << ": " << outcome.verdict.mismatch->check << " — "
        << outcome.verdict.mismatch->detail;
    EXPECT_GT(outcome.verdict.jobs, 0u) << file;
  }
}

}  // namespace
}  // namespace fppn::gen
