#include "fppn/event.hpp"

#include <gtest/gtest.h>

#include "fppn/network.hpp"

namespace fppn {
namespace {

TEST(EventSpec, ValidationRejectsBadValues) {
  EventSpec s{EventKind::kPeriodic, 0, Duration::ms(10), Duration::ms(10)};
  EXPECT_THROW(s.validate(), std::invalid_argument);  // burst < 1
  s = {EventKind::kPeriodic, 1, Duration::zero(), Duration::ms(10)};
  EXPECT_THROW(s.validate(), std::invalid_argument);  // period <= 0
  s = {EventKind::kPeriodic, 1, Duration::ms(10), Duration::zero()};
  EXPECT_THROW(s.validate(), std::invalid_argument);  // deadline <= 0
  s = {EventKind::kSporadic, 2, Duration::ms(700), Duration::ms(700)};
  EXPECT_NO_THROW(s.validate());
}

TEST(SporadicConstraint, BurstOneIsMinimumSeparation) {
  // m = 1: consecutive events at least T apart.
  EXPECT_TRUE(satisfies_sporadic_constraint(
      {Time::ms(0), Time::ms(100), Time::ms(200)}, 1, Duration::ms(100)));
  EXPECT_FALSE(satisfies_sporadic_constraint(
      {Time::ms(0), Time::ms(99)}, 1, Duration::ms(100)));
}

TEST(SporadicConstraint, BurstTwoAllowsPairs) {
  // 2 per 700 (the CoefB generator): a pair at the same instant is fine,
  // a third event within 700 of the first is not.
  EXPECT_TRUE(satisfies_sporadic_constraint({Time::ms(0), Time::ms(0)}, 2,
                                            Duration::ms(700)));
  EXPECT_TRUE(satisfies_sporadic_constraint(
      {Time::ms(0), Time::ms(10), Time::ms(700)}, 2, Duration::ms(700)));
  EXPECT_FALSE(satisfies_sporadic_constraint(
      {Time::ms(0), Time::ms(10), Time::ms(699)}, 2, Duration::ms(700)));
}

TEST(SporadicConstraint, ExactWindowBoundaryAdmitted) {
  // Half-closed windows: events T apart never violate.
  EXPECT_TRUE(satisfies_sporadic_constraint({Time::ms(0), Time::ms(100)}, 1,
                                            Duration::ms(100)));
}

TEST(SporadicScript, ConstructionSortsAndValidates) {
  const SporadicScript s({Time::ms(300), Time::ms(0)}, 1, Duration::ms(100));
  ASSERT_EQ(s.times().size(), 2u);
  EXPECT_EQ(s.times()[0], Time::ms(0));
  EXPECT_EQ(s.times()[1], Time::ms(300));
}

TEST(SporadicScript, RejectsViolatingScript) {
  EXPECT_THROW(SporadicScript({Time::ms(0), Time::ms(1)}, 1, Duration::ms(100)),
               std::invalid_argument);
  EXPECT_THROW(SporadicScript({Time::ms(-5)}, 1, Duration::ms(100)),
               std::invalid_argument);
}

TEST(SporadicScript, RandomScriptsAreAdmissibleAndDeterministic) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const SporadicScript s =
        SporadicScript::random(2, Duration::ms(200), Time::ms(2000), seed);
    EXPECT_TRUE(satisfies_sporadic_constraint(s.times(), 2, Duration::ms(200)))
        << "seed " << seed;
    for (const Time& t : s.times()) {
      EXPECT_GE(t, Time::ms(0));
      EXPECT_LT(t, Time::ms(2000));
    }
    // Same seed, same script.
    const SporadicScript again =
        SporadicScript::random(2, Duration::ms(200), Time::ms(2000), seed);
    EXPECT_EQ(s.times(), again.times());
  }
}

TEST(InvocationPlan, GroupsByTimeSortedWithBursts) {
  InvocationPlan plan;
  plan.add(Time::ms(200), ProcessId{1});
  plan.add(Time::ms(0), ProcessId{0}, 2);
  plan.add(Time::ms(0), ProcessId{1});
  const auto groups = plan.groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].time, Time::ms(0));
  ASSERT_EQ(groups[0].processes.size(), 3u);  // burst of 2 + one more
  EXPECT_EQ(groups[0].processes[0], ProcessId{0});
  EXPECT_EQ(groups[0].processes[1], ProcessId{0});
  EXPECT_EQ(groups[0].processes[2], ProcessId{1});
  EXPECT_EQ(plan.invocation_count(), 4u);
}

TEST(InvocationPlan, RejectsBadInput) {
  InvocationPlan plan;
  EXPECT_THROW(plan.add(Time(Rational(-1)), ProcessId{0}), std::invalid_argument);
  EXPECT_THROW(plan.add(Time::ms(0), ProcessId{0}, 0), std::invalid_argument);
}

TEST(InvocationPlan, BuildFromNetworkPeriodics) {
  NetworkBuilder b;
  const ProcessId fast =
      b.periodic("fast", Duration::ms(100), Duration::ms(100), no_op_behavior());
  const ProcessId burst = b.multi_periodic("burst", 3, Duration::ms(200),
                                           Duration::ms(200), no_op_behavior());
  const Network net = std::move(b).build();
  const InvocationPlan plan = InvocationPlan::build(net, Time::ms(400));
  // fast: 0,100,200,300 (4) ; burst: 3 at 0 and 3 at 200 (6).
  EXPECT_EQ(plan.invocation_count(), 10u);
  const auto groups = plan.groups();
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0].processes.size(), 4u);  // fast + 3x burst at t=0
  (void)fast;
  (void)burst;
}

TEST(InvocationPlan, BuildUsesSporadicScripts) {
  NetworkBuilder b;
  const ProcessId user =
      b.periodic("user", Duration::ms(100), Duration::ms(100), no_op_behavior());
  const ProcessId spor = b.sporadic("spor", 1, Duration::ms(150), Duration::ms(300),
                                    no_op_behavior());
  b.blackboard("cfg", spor, user);
  b.priority(user, spor);
  const Network net = std::move(b).build();
  std::map<ProcessId, SporadicScript> scripts;
  scripts.emplace(spor,
                  SporadicScript({Time::ms(30), Time::ms(390)}, 1, Duration::ms(150)));
  const InvocationPlan plan = InvocationPlan::build(net, Time::ms(400), scripts);
  // user: 4 invocations; sporadic: 2 (one at 390 < 400).
  EXPECT_EQ(plan.invocation_count(), 6u);
  // Without a script the sporadic never fires.
  const InvocationPlan quiet = InvocationPlan::build(net, Time::ms(400));
  EXPECT_EQ(quiet.invocation_count(), 4u);
}

TEST(EventKind, ToString) {
  EXPECT_EQ(to_string(EventKind::kPeriodic), "periodic");
  EXPECT_EQ(to_string(EventKind::kSporadic), "sporadic");
}

}  // namespace
}  // namespace fppn
