// Seeded fault-injection sweep over the in-process serving stack: the
// real net::Server + engine::SolveService + engine::Engine wiring (the
// daemon minus flag parsing) under deterministic chaos — injected
// EINTR/EAGAIN storms, short reads and writes, synthetic ECONNRESETs,
// and failing fsync/rename/unlink in the cache persistence path.
//
// Invariants asserted per seed (FPPN_CHAOS_SEEDS overrides the sweep
// size; CI runs 200 under ASan):
//   - the stack never crashes and every client call returns (deadlines
//     bound every stall the injector can manufacture);
//   - no client ever reads bytes that are not a prefix of a real
//     "fppn-serve ..." response — chaos may truncate, never corrupt or
//     cross-wire;
//   - cache maintenance under injection never throws, and once the
//     injector is disarmed one gc() pass restores the entry bound — an
//     injected unlink/rename failure may delay eviction, never break it;
//   - the drain completes with the injector still armed.
// A final check asserts the sweep leaked no file descriptors. Every
// failure message includes the seed: re-run with that seed for a
// bit-identical injection schedule.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/service.hpp"
#include "net/listener.hpp"
#include "net/server.hpp"
#include "sched/schedule_cache.hpp"
#include "testing/fault_injector.hpp"

namespace fppn {
namespace {

namespace fs = std::filesystem;
using fppn::testing::FaultConfig;
using fppn::testing::FaultInjector;

const std::string kFig1 =
    std::string(FPPN_TEST_SOURCE_DIR) + "/../examples/fig1.fppn";

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("fppn_serve_chaos_test_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string read_to_eof(int fd) {
  std::string data;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      data.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;
  }
  return data;
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string roundtrip(const std::string& socket_path, const std::string& request) {
  const int fd = fppn::net::connect_endpoint(net::Endpoint::unix_socket(socket_path));
  if (fd < 0) {
    return "";  // accept may be saturated by injected faults: a clean miss
  }
  write_all(fd, request);
  ::shutdown(fd, SHUT_WR);
  const std::string response = read_to_eof(fd);
  ::close(fd);
  return response;
}

/// Sweep size: FPPN_CHAOS_SEEDS when set (CI runs 200), else 25.
int chaos_seeds() {
  if (const char* env = std::getenv("FPPN_CHAOS_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  return 25;
}

/// Open file descriptors of this process (the leak detector).
std::size_t open_fd_count() {
  std::size_t count = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) {
    return 0;  // non-procfs platform: the check degrades to a no-op
  }
  while (::readdir(dir) != nullptr) {
    ++count;
  }
  ::closedir(dir);
  return count;
}

/// Any byte sequence a client reads must be a prefix of a response that
/// starts "fppn-serve " — injected resets may truncate, but a single
/// wrong byte means corruption or a cross-wired response.
bool is_clean_prefix(const std::string& response) {
  static const std::string kHeader = "fppn-serve ";
  const std::size_t n = std::min(response.size(), kHeader.size());
  return response.compare(0, n, kHeader, 0, n) == 0;
}

/// Entry files currently in a cache directory.
std::size_t sched_file_count(const std::string& dir) {
  std::size_t count = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".sched") {
      ++count;
    }
  }
  return count;
}

/// One chaos round: a full serving stack on its own socket and cache
/// directory, traffic driven through it with the injector armed at
/// `seed`, then the armed drain and the disarmed cache-bound check.
void run_chaos_round(std::uint64_t seed, const std::string& network) {
  const TempDir dir("seed" + std::to_string(seed));
  const std::string socket_path = dir.path() + "/chaos.sock";
  const std::string cache_dir = dir.path() + "/cache";
  constexpr std::size_t kCacheBound = 4;

  engine::Engine engine;
  engine::ServiceOptions service_options;
  service_options.processors = 2;
  service_options.cache_dir = cache_dir;
  service_options.cache_max_entries = kCacheBound;
  engine::SolveService service(engine, service_options);

  net::ServerOptions server_options;
  server_options.solver_threads = 2;
  server_options.queue_capacity = 4;
  server_options.idle_timeout_ms = 200;
  server_options.request_timeout_ms = 500;
  server_options.write_timeout_ms = 500;
  server_options.queue_deadline_ms = 400;

  net::ServerProtocol protocol;
  protocol.overloaded = [&service] { return service.overloaded_line(); };
  protocol.oversized = [&service](std::size_t bytes) {
    return service.oversized_line(bytes);
  };
  protocol.read_error = [&service](int error) {
    return service.read_error_line(error);
  };
  protocol.deadline_exceeded = [&service] {
    return service.deadline_exceeded_line();
  };
  protocol.timed_out = [&service](net::Reactor::TimeoutKind kind) {
    service.note_timeout(kind == net::Reactor::TimeoutKind::kIdle
                             ? engine::ServeTimeout::kIdle
                             : kind == net::Reactor::TimeoutKind::kRequest
                                   ? engine::ServeTimeout::kRequest
                                   : engine::ServeTimeout::kWrite);
  };

  net::Server server(server_options, protocol,
                     [&service](std::string request, const net::RequestInfo& info) {
                       engine::RequestLoad load;
                       load.queue_wait_ms = info.queue_wait_ms;
                       load.queue_depth = info.queue_depth;
                       load.queue_capacity = info.queue_capacity;
                       return service.handle(request, load);
                     });
  server.add_listener(
      net::Listener::listen(net::Endpoint::unix_socket(socket_path)));

  // Arm AFTER the listener exists (binding is setup, not traffic) so the
  // injection schedule covers exactly the serving window.
  FaultInjector::instance().arm(FaultConfig::uniform(seed, /*rate_per_1024=*/96));
  std::thread server_thread([&server] { server.run(); });

  // The traffic mix: two solves (the second warms from the first), the
  // stats verb, a parse error, and an empty request...
  std::vector<std::string> responses;
  responses.push_back(roundtrip(socket_path, network));
  responses.push_back(roundtrip(socket_path, network));
  responses.push_back(roundtrip(socket_path, "stats"));
  responses.push_back(roundtrip(socket_path, "garbage request\n"));
  responses.push_back(roundtrip(socket_path, ""));
  // ...plus an abandoned client: partial request, immediate close, the
  // response never read — the server's answer lands on a dead peer, so
  // this leg drives the write-error path under injection.
  {
    const int fd =
        net::connect_endpoint(net::Endpoint::unix_socket(socket_path));
    if (fd >= 0) {
      write_all(fd, network.substr(0, network.size() / 2));
      ::close(fd);
    }
  }

  // Cache maintenance races the traffic with injection live — the gc
  // contract is that filesystem failures degrade to counted warnings.
  {
    sched::ScheduleCache cache(cache_dir, kCacheBound);
    EXPECT_NO_THROW((void)cache.gc()) << "seed " << seed;
  }

  // Drain with the injector still armed: run() returning IS the assert.
  server.stop();
  server_thread.join();
  FaultInjector::instance().disarm();

  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_TRUE(is_clean_prefix(responses[i]))
        << "seed " << seed << " request " << i << " read corrupt bytes: '"
        << responses[i].substr(0, 64) << "'";
  }

  // With injection off, one gc() pass must restore the entry bound no
  // matter which unlinks/renames the chaos round left undone.
  sched::ScheduleCache cache(cache_dir, kCacheBound);
  const sched::CacheGcStats pass = cache.gc();
  EXPECT_EQ(pass.evict_failures, 0u) << "seed " << seed;
  EXPECT_FALSE(pass.index_write_failed) << "seed " << seed;
  EXPECT_LE(sched_file_count(cache_dir), kCacheBound) << "seed " << seed;
}

TEST(ServeChaos, SeededSweepIsCrashFreeAndKeepsTheCacheBounded) {
  std::signal(SIGPIPE, SIG_IGN);
  const std::string network = slurp(kFig1);
  ASSERT_FALSE(network.empty());

  const std::size_t fds_before = open_fd_count();
  const int seeds = chaos_seeds();
  for (int seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    run_chaos_round(static_cast<std::uint64_t>(seed), network);
    if (::testing::Test::HasFatalFailure()) {
      break;
    }
  }
  FaultInjector::instance().disarm();

  // Every server, listener, connection and cache round is gone: the
  // sweep must not have leaked a single descriptor (small slack for
  // allocator/gtest incidentals).
  const std::size_t fds_after = open_fd_count();
  EXPECT_LE(fds_after, fds_before + 4)
      << "fd leak across the sweep: " << fds_before << " -> " << fds_after;
}

}  // namespace
}  // namespace fppn
