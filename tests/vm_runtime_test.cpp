// The static-order online policy on the virtual platform (§IV):
// Prop. 4.1 (feasible schedule => deadlines met + real-time semantics
// implemented), robustness to actual execution times, sporadic
// false-marking, frame repetition and the overhead model.
#include "runtime/vm_runtime.hpp"

#include <gtest/gtest.h>

#include "apps/fig1.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/search.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

struct Fig1Setup {
  apps::Fig1App app;
  DerivedTaskGraph derived;
  StaticSchedule schedule;

  static Fig1Setup make(std::int64_t processors = 2) {
    Fig1Setup s;
    s.app = apps::build_fig1();
    s.derived = derive_task_graph(s.app.net, s.app.fig3_wcets());
    s.schedule = list_schedule(s.derived.graph, PriorityHeuristic::kAlapEdf, processors);
    EXPECT_TRUE(s.schedule.check_feasibility(s.derived.graph).feasible());
    return s;
  }

  [[nodiscard]] InputScripts inputs(std::int64_t frames) const {
    std::vector<double> samples;
    for (std::int64_t i = 0; i < frames + 2; ++i) {
      samples.push_back(static_cast<double>(i + 1));
    }
    return app.make_inputs(samples, {2.0, 3.0, 4.0, 5.0, 6.0, 7.0});
  }
};

TEST(VmRuntime, Prop41FeasibleScheduleMeetsDeadlines) {
  const Fig1Setup s = Fig1Setup::make();
  VmRunOptions opts;
  opts.frames = 4;
  const RunResult r = run_static_order_vm(s.app.net, s.derived, s.schedule, opts,
                                          s.inputs(4), {});
  EXPECT_TRUE(r.met_all_deadlines());
  // CoefB never invoked: 2 server jobs skipped per frame.
  EXPECT_EQ(r.false_skips, 8u);
  EXPECT_EQ(r.jobs_executed, 4u * 8u);  // 10 jobs minus 2 skipped, x4 frames
}

TEST(VmRuntime, MatchesZeroDelayReferenceWithoutSporadics) {
  const Fig1Setup s = Fig1Setup::make();
  VmRunOptions opts;
  opts.frames = 3;
  const InputScripts in = s.inputs(3);
  const RunResult r = run_static_order_vm(s.app.net, s.derived, s.schedule, opts, in, {});
  const ZeroDelayResult ref =
      zero_delay_reference(s.app.net, s.derived.hyperperiod, 3, in, {});
  EXPECT_TRUE(r.histories.functionally_equal(ref.histories))
      << r.histories.diff(ref.histories, s.app.net);
}

TEST(VmRuntime, MatchesZeroDelayReferenceWithSporadics) {
  const Fig1Setup s = Fig1Setup::make();
  const std::int64_t frames = 4;
  // Keep invocations within the covered window span (the last server
  // subset of the run arrives at (frames-1)*H).
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    std::map<ProcessId, SporadicScript> scripts;
    scripts.emplace(s.app.coef_b,
                    SporadicScript::random(2, Duration::ms(700),
                                           Time::ms(200 * (frames - 1)), seed));
    VmRunOptions opts;
    opts.frames = frames;
    const InputScripts in = s.inputs(frames);
    const RunResult r =
        run_static_order_vm(s.app.net, s.derived, s.schedule, opts, in, scripts);
    const ZeroDelayResult ref =
        zero_delay_reference(s.app.net, s.derived.hyperperiod, frames, in, scripts);
    EXPECT_TRUE(r.histories.functionally_equal(ref.histories))
        << "seed " << seed << "\n"
        << r.histories.diff(ref.histories, s.app.net);
    EXPECT_TRUE(r.met_all_deadlines()) << "seed " << seed;
  }
}

TEST(VmRuntime, RobustToShorterActualTimes) {
  // §IV motivation: starts synchronize on invocations/predecessors, so
  // running faster than WCET cannot break precedence or determinism.
  const Fig1Setup s = Fig1Setup::make();
  VmRunOptions fast;
  fast.frames = 2;
  fast.actual_time = [](JobId id, std::int64_t frame) {
    return Duration::ms(5 + ((id.value() + static_cast<std::size_t>(frame)) % 7));
  };
  const InputScripts in = s.inputs(2);
  const RunResult quick = run_static_order_vm(s.app.net, s.derived, s.schedule, fast,
                                              in, {});
  VmRunOptions nominal;
  nominal.frames = 2;
  const RunResult slow = run_static_order_vm(s.app.net, s.derived, s.schedule, nominal,
                                             in, {});
  EXPECT_TRUE(quick.met_all_deadlines());
  EXPECT_TRUE(quick.histories.functionally_equal(slow.histories));
  EXPECT_LE(quick.span_end, slow.span_end);
}

TEST(VmRuntime, WcetOverrunMayMissButStaysDeterministic) {
  const Fig1Setup s = Fig1Setup::make();
  VmRunOptions overrun;
  overrun.frames = 2;
  overrun.actual_time = [](JobId, std::int64_t) { return Duration::ms(60); };
  const InputScripts in = s.inputs(2);
  const RunResult r =
      run_static_order_vm(s.app.net, s.derived, s.schedule, overrun, in, {});
  EXPECT_FALSE(r.met_all_deadlines());
  const ZeroDelayResult ref =
      zero_delay_reference(s.app.net, s.derived.hyperperiod, 2, in, {});
  EXPECT_TRUE(r.histories.functionally_equal(ref.histories))
      << "overruns must not corrupt the functional behavior";
}

TEST(VmRuntime, SporadicAtExactBoundaryHandledPerFig2) {
  // CoefB -> FilterB (p -> u): an invocation exactly at the subset
  // boundary b = 200 belongs to the (a, b] window of frame 1's subset.
  const Fig1Setup s = Fig1Setup::make();
  std::map<ProcessId, SporadicScript> scripts;
  scripts.emplace(s.app.coef_b,
                  SporadicScript({Time::ms(200)}, 2, Duration::ms(700)));
  VmRunOptions opts;
  opts.frames = 3;
  const RunResult r = run_static_order_vm(s.app.net, s.derived, s.schedule, opts,
                                          s.inputs(3), scripts);
  // One real invocation: 6 server slots minus 1 executed = 5 skips.
  EXPECT_EQ(r.false_skips, 5u);
  EXPECT_EQ(r.jobs_executed, 3u * 8u + 1u);
  const ZeroDelayResult ref = zero_delay_reference(s.app.net, s.derived.hyperperiod,
                                                   3, s.inputs(3), scripts);
  EXPECT_TRUE(r.histories.functionally_equal(ref.histories))
      << r.histories.diff(ref.histories, s.app.net);
}

TEST(VmRuntime, EarlySporadicInvocationMayStartBeforeBoundary) {
  // "For sporadic ones the invocation occurs either at time Ai or
  // earlier": an invocation early in its window lets the server job run
  // before its nominal arrival A_i when the processor is free. Observable
  // for subsets after the first (the frame itself opens at n*H).
  NetworkBuilder b;
  const ProcessId user = b.periodic("user", Duration::ms(100), Duration::ms(100),
                                    behavior([](JobContext& ctx) {
                                      (void)ctx.read("cfg");
                                    }));
  const ProcessId slow =
      b.periodic("slow", Duration::ms(200), Duration::ms(200), no_op_behavior());
  const ProcessId spor = b.sporadic("spor", 1, Duration::ms(150), Duration::ms(300),
                                    behavior([](JobContext& ctx) {
                                      ctx.write("cfg", Value{1.0});
                                    }));
  b.blackboard("cfg", spor, user);
  b.priority(spor, user);
  const Network net = std::move(b).build();
  DerivedTaskGraph derived = derive_task_graph(net, Duration::ms(10));
  ASSERT_EQ(derived.hyperperiod, Duration::ms(200));  // 2 subsets per frame
  const StaticSchedule schedule =
      list_schedule(derived.graph, PriorityHeuristic::kAlapEdf, 1);
  ASSERT_TRUE(schedule.check_feasibility(derived.graph).feasible());

  // Invocation at t=10 falls in the (0, 100] window of subset 2 (A_i=100).
  std::map<ProcessId, SporadicScript> scripts;
  scripts.emplace(spor, SporadicScript({Time::ms(10)}, 1, Duration::ms(150)));
  VmRunOptions opts;
  opts.frames = 1;
  const RunResult r = run_static_order_vm(net, derived, schedule, opts, {}, scripts);
  bool found = false;
  for (const TraceEvent& e : r.trace.events()) {
    if (e.kind == TraceEventKind::kJobRun && e.label == "spor[2]") {
      EXPECT_LT(e.time, Time::ms(100)) << "should start before its arrival boundary";
      found = true;
    }
  }
  EXPECT_TRUE(found);
  (void)user;
  (void)slow;
}

TEST(VmRuntime, OverheadModelDelaysFrameStart) {
  const Fig1Setup s = Fig1Setup::make();
  VmRunOptions opts;
  opts.frames = 2;
  opts.overhead = OverheadModel{Duration::ms(41), Duration::ms(20), Duration::zero()};
  const RunResult r = run_static_order_vm(s.app.net, s.derived, s.schedule, opts,
                                          s.inputs(2), {});
  // No job of frame 0 starts before 41; none of frame 1 before 220.
  for (const TraceEvent& e : r.trace.events()) {
    if (e.kind != TraceEventKind::kJobRun) {
      continue;
    }
    EXPECT_GE(e.time, e.frame == 0 ? Time::ms(41) : Time::ms(220)) << e.label;
  }
  EXPECT_EQ(r.trace.of_kind(TraceEventKind::kOverhead).size(), 2u);
}

TEST(VmRuntime, FrameRepetitionKeepsPeriodicPhase) {
  const Fig1Setup s = Fig1Setup::make();
  VmRunOptions opts;
  opts.frames = 3;
  const RunResult r = run_static_order_vm(s.app.net, s.derived, s.schedule, opts,
                                          s.inputs(3), {});
  // InputA executes exactly once per frame, at or after n*200.
  int count = 0;
  for (const TraceEvent& e : r.trace.events()) {
    if (e.kind == TraceEventKind::kJobRun && e.label == "InputA[1]") {
      EXPECT_GE(e.time, Time::ms(200 * e.frame));
      EXPECT_LT(e.time, Time::ms(200 * (e.frame + 1)));
      ++count;
    }
  }
  EXPECT_EQ(count, 3);
}

TEST(VmRuntime, RejectsIncompleteSchedule) {
  const Fig1Setup s = Fig1Setup::make();
  StaticSchedule partial(s.derived.graph.job_count(), 2);
  partial.place(JobId(0), ProcessorId(0), Time::ms(0));
  EXPECT_THROW(
      run_static_order_vm(s.app.net, s.derived, partial, VmRunOptions{}, {}, {}),
      std::invalid_argument);
}

TEST(VmRuntime, RejectsBadOptions) {
  const Fig1Setup s = Fig1Setup::make();
  VmRunOptions opts;
  opts.frames = 0;
  EXPECT_THROW(run_static_order_vm(s.app.net, s.derived, s.schedule, opts, {}, {}),
               std::invalid_argument);
  VmRunOptions negative;
  negative.actual_time = [](JobId, std::int64_t) { return -Duration::ms(1); };
  EXPECT_THROW(
      run_static_order_vm(s.app.net, s.derived, s.schedule, negative, {}, {}),
      std::invalid_argument);
}

TEST(VmRuntime, TraceSummaryCountsConsistent) {
  const Fig1Setup s = Fig1Setup::make();
  VmRunOptions opts;
  opts.frames = 2;
  const RunResult r = run_static_order_vm(s.app.net, s.derived, s.schedule, opts,
                                          s.inputs(2), {});
  EXPECT_EQ(r.trace.executed_job_count(), r.jobs_executed);
  EXPECT_EQ(r.trace.false_skip_count(), r.false_skips);
  EXPECT_EQ(r.trace.deadline_miss_count(), r.misses.size());
  EXPECT_NE(r.trace.summary().find("jobs executed"), std::string::npos);
}

}  // namespace
}  // namespace fppn
