// Daemon-level tests for the restructured serving stack: the real
// fppn_serve binary (reactor + bounded queue + solver pool) driven by
// in-process socket clients — 32-way concurrent load with the warm-cache
// `evaluated 0` contract, the stats verb's golden counters, the
// --max-request-bytes reject, the TCP listener (ephemeral port reported
// on stderr), and the hard-read-error regression (a client aborting
// mid-send with a TCP RST must surface as an error response path, never
// as a solve of the truncated bytes).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/listener.hpp"

namespace {

namespace fs = std::filesystem;
using fppn::net::Endpoint;

const std::string kFig1 =
    std::string(FPPN_TEST_SOURCE_DIR) + "/../examples/fig1.fppn";

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("fppn_serve_stack_test_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string read_to_eof(int fd) {
  std::string data;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      data.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;
  }
  return data;
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

/// One request/response roundtrip against the daemon.
std::string roundtrip(const Endpoint& endpoint, const std::string& request) {
  const int fd = fppn::net::connect_endpoint(endpoint);
  if (fd < 0) {
    return "<connect failed: " + std::string(std::strerror(errno)) + ">";
  }
  write_all(fd, request);
  ::shutdown(fd, SHUT_WR);
  const std::string response = read_to_eof(fd);
  ::close(fd);
  return response;
}

/// Forks the daemon with the given extra flags, stderr captured to `log`.
pid_t start_daemon(const std::vector<std::string>& args, const std::string& log) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (std::freopen(log.c_str(), "w", stderr) == nullptr) {
      std::_Exit(126);
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(FPPN_SERVE_BIN));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(FPPN_SERVE_BIN, argv.data());
    std::_Exit(127);
  }
  return pid;
}

bool wait_for_socket(const std::string& socket_path) {
  for (int i = 0; i < 100; ++i) {
    if (fs::exists(socket_path)) return true;
    ::usleep(50 * 1000);
  }
  return false;
}

/// Waits (up to ~5 s) for `needle` to appear in the daemon log.
bool wait_for_log(const std::string& log, const std::string& needle) {
  for (int i = 0; i < 100; ++i) {
    if (slurp(log).find(needle) != std::string::npos) return true;
    ::usleep(50 * 1000);
  }
  return false;
}

/// The ephemeral TCP port from the daemon's "listening on tcp" line.
std::uint16_t tcp_port_from_log(const std::string& log) {
  const std::string text = slurp(log);
  const std::string marker = "listening on tcp 127.0.0.1:";
  const std::size_t at = text.find(marker);
  if (at == std::string::npos) {
    return 0;
  }
  return static_cast<std::uint16_t>(
      std::strtoul(text.c_str() + at + marker.size(), nullptr, 10));
}

/// SIGINT + waitpid; returns the daemon exit code (-1 = abnormal).
int stop_daemon(pid_t pid) {
  if (::kill(pid, SIGINT) != 0) {
    return -1;
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status)) {
    return -1;
  }
  return WEXITSTATUS(status);
}

std::string status_line(const std::string& text) {
  const std::size_t nl = text.find('\n');
  return text.substr(0, nl == std::string::npos ? text.size() : nl);
}

/// Token `index` (0-based, whitespace-split) of the status line.
std::string token(const std::string& line, int index) {
  std::istringstream ss(line);
  std::string t;
  for (int i = 0; i <= index; ++i) {
    if (!(ss >> t)) return "";
  }
  return t;
}

TEST(ServeStack, ThirtyTwoConcurrentClientsThenEveryRepeatIsCached) {
  const TempDir dir("stress");
  const std::string socket_path = dir.path() + "/serve.sock";
  const std::string log = dir.path() + "/daemon.log";
  const pid_t daemon = start_daemon(
      {"--socket", socket_path, "--workers", "4", "--queue-capacity", "64"}, log);
  ASSERT_GT(daemon, 0);
  ASSERT_TRUE(wait_for_socket(socket_path)) << slurp(log);
  const std::string request = slurp(kFig1);
  ASSERT_FALSE(request.empty());
  const Endpoint endpoint = Endpoint::unix_socket(socket_path);

  // Round 1: 32 clients at once. Every response must parse as a complete
  // ok response with the same fingerprint — concurrency never tears or
  // cross-wires a response.
  constexpr int kClients = 32;
  std::vector<std::string> responses(kClients);
  {
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        responses[static_cast<std::size_t>(i)] = roundtrip(endpoint, request);
      });
    }
    for (std::thread& t : clients) {
      t.join();
    }
  }
  const std::string fingerprint = token(status_line(responses[0]), 3);
  ASSERT_EQ(fingerprint.size(), 16u) << responses[0];
  for (int i = 0; i < kClients; ++i) {
    const std::string& r = responses[static_cast<std::size_t>(i)];
    EXPECT_EQ(r.find("fppn-serve ok fingerprint "), 0u) << r;
    EXPECT_EQ(token(status_line(r), 3), fingerprint) << r;
    EXPECT_NE(r.find("\nfppn-schedule v1\n"), std::string::npos) << r;
    EXPECT_NE(r.find("\nend\n"), std::string::npos) << r;
  }

  // Round 2: the same 32 requests again, concurrently. The fingerprint is
  // warm in the daemon's shared cache now, so *every* repeat must report
  // `evaluated 0` — answered entirely from cache, bit-identical winner.
  {
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        responses[static_cast<std::size_t>(i)] = roundtrip(endpoint, request);
      });
    }
    for (std::thread& t : clients) {
      t.join();
    }
  }
  for (int i = 0; i < kClients; ++i) {
    const std::string& r = responses[static_cast<std::size_t>(i)];
    EXPECT_NE(status_line(r).find(" evaluated 0 "), std::string::npos) << r;
    EXPECT_EQ(token(status_line(r), 3), fingerprint) << r;
  }

  EXPECT_EQ(stop_daemon(daemon), 0) << slurp(log);
}

TEST(ServeStack, StatsVerbReportsGoldenCounters) {
  const TempDir dir("stats");
  const std::string socket_path = dir.path() + "/serve.sock";
  const std::string log = dir.path() + "/daemon.log";
  const pid_t daemon = start_daemon({"--socket", socket_path}, log);
  ASSERT_GT(daemon, 0);
  ASSERT_TRUE(wait_for_socket(socket_path)) << slurp(log);
  const Endpoint endpoint = Endpoint::unix_socket(socket_path);
  const std::string request = slurp(kFig1);

  // Two ok solves (one cold, one cached) and one parse error.
  EXPECT_EQ(roundtrip(endpoint, request).find("fppn-serve ok"), 0u);
  EXPECT_EQ(roundtrip(endpoint, request).find("fppn-serve ok"), 0u);
  EXPECT_EQ(roundtrip(endpoint, "garbage\n").find("fppn-serve error: parse error"),
            0u);

  // The stats verb aggregates exactly those: 3 requests, 2 ok, 1 error,
  // no transport rejects — and the verb itself is never counted.
  const std::string stats = roundtrip(endpoint, "stats");
  EXPECT_EQ(stats.find("fppn-serve stats requests 3 ok 2 errors 1 overloaded 0 "
                       "read-errors 0 oversized 0 "),
            0u)
      << stats;
  EXPECT_NE(stats.find(" cache-hits "), std::string::npos) << stats;
  EXPECT_NE(stats.find(" hit-rate "), std::string::npos) << stats;
  EXPECT_NE(stats.find(" p50-ms "), std::string::npos) << stats;
  EXPECT_NE(stats.find(" p99-ms "), std::string::npos) << stats;
  EXPECT_NE(stats.find(" uptime-ms "), std::string::npos) << stats;

  // The --stats client flag is the scriptable form: exit 0 on a stats
  // response, the line on stdout.
  const std::string out_file = dir.path() + "/stats.out";
  const std::string command = std::string("'") + FPPN_SERVE_BIN + "' --socket '" +
                              socket_path + "' --stats > '" + out_file + "'";
  const int status = std::system(command.c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(slurp(out_file).find("fppn-serve stats requests 3 "), 0u)
      << slurp(out_file);

  EXPECT_EQ(stop_daemon(daemon), 0) << slurp(log);
}

TEST(ServeStack, OversizedRequestIsRejectedAndTheDaemonSurvives) {
  const TempDir dir("oversize");
  const std::string socket_path = dir.path() + "/serve.sock";
  const std::string log = dir.path() + "/daemon.log";
  const pid_t daemon =
      start_daemon({"--socket", socket_path, "--max-request-bytes", "64"}, log);
  ASSERT_GT(daemon, 0);
  ASSERT_TRUE(wait_for_socket(socket_path)) << slurp(log);
  const Endpoint endpoint = Endpoint::unix_socket(socket_path);

  const std::string request = slurp(kFig1);  // fig1 is far beyond 64 bytes
  ASSERT_GT(request.size(), 64u);
  EXPECT_EQ(roundtrip(endpoint, request),
            "fppn-serve error: request too large: exceeds --max-request-bytes "
            "64\n");

  // The reject is per connection: the daemon still answers, and the
  // stats verb counts the reject without counting it as a request.
  const std::string stats = roundtrip(endpoint, "stats");
  EXPECT_EQ(stats.find("fppn-serve stats requests 0 ok 0 errors 0 "), 0u) << stats;
  EXPECT_NE(stats.find(" oversized 1 "), std::string::npos) << stats;

  EXPECT_EQ(stop_daemon(daemon), 0) << slurp(log);
}

TEST(ServeStack, TcpListenerServesOnAnEphemeralPort) {
  const TempDir dir("tcp");
  const std::string log = dir.path() + "/daemon.log";
  // Port 0: the daemon binds an ephemeral port and reports the real one
  // on stderr — no reserved ports in tests or CI.
  const pid_t daemon = start_daemon({"--listen", "127.0.0.1:0"}, log);
  ASSERT_GT(daemon, 0);
  ASSERT_TRUE(wait_for_log(log, "listening on tcp 127.0.0.1:")) << slurp(log);
  const std::uint16_t port = tcp_port_from_log(log);
  ASSERT_NE(port, 0) << slurp(log);

  const std::string request = slurp(kFig1);
  const std::string response = roundtrip(Endpoint::tcp("127.0.0.1", port), request);
  EXPECT_EQ(response.find("fppn-serve ok fingerprint "), 0u) << response;
  EXPECT_NE(response.find("\nend\n"), std::string::npos) << response;

  // The one-shot client speaks TCP through the same --listen flag.
  const std::string out_file = dir.path() + "/client.out";
  const std::string command = std::string("'") + FPPN_SERVE_BIN +
                              "' --listen 127.0.0.1:" + std::to_string(port) +
                              " --request '" + kFig1 + "' > '" + out_file + "'";
  const int status = std::system(command.c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_NE(slurp(out_file).find(" evaluated 0 "), std::string::npos)
      << slurp(out_file);  // warm: same fingerprint as the first request

  EXPECT_EQ(stop_daemon(daemon), 0) << slurp(log);
}

TEST(ServeStack, TornTcpRequestSurfacesAsAReadErrorNotASolve) {
  // Regression: the PR 8 daemon treated a hard read() failure like EOF
  // and solved the truncated request. A mid-send RST must land in the
  // read-error counter with zero solve attempts.
  const TempDir dir("torn");
  const std::string socket_path = dir.path() + "/serve.sock";
  const std::string log = dir.path() + "/daemon.log";
  const pid_t daemon =
      start_daemon({"--socket", socket_path, "--listen", "127.0.0.1:0"}, log);
  ASSERT_GT(daemon, 0);
  ASSERT_TRUE(wait_for_socket(socket_path)) << slurp(log);
  ASSERT_TRUE(wait_for_log(log, "listening on tcp 127.0.0.1:")) << slurp(log);
  const std::uint16_t port = tcp_port_from_log(log);
  ASSERT_NE(port, 0) << slurp(log);

  const int fd = fppn::net::connect_endpoint(Endpoint::tcp("127.0.0.1", port));
  ASSERT_GE(fd, 0) << std::strerror(errno);
  write_all(fd, "process a period 10\n");  // a prefix of a valid network
  struct linger hard_close;
  hard_close.l_onoff = 1;
  hard_close.l_linger = 0;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close,
                         sizeof(hard_close)),
            0);
  ::close(fd);  // RST: the daemon's read() fails hard mid-request

  // The reactor notices asynchronously; poll the stats verb until the
  // read error lands (bounded wait).
  std::string stats;
  for (int i = 0; i < 100; ++i) {
    stats = roundtrip(Endpoint::unix_socket(socket_path), "stats");
    if (stats.find(" read-errors 1 ") != std::string::npos) break;
    ::usleep(50 * 1000);
  }
  EXPECT_NE(stats.find(" read-errors 1 "), std::string::npos) << stats;
  // The truncated text was never solved: zero requests, zero errors.
  EXPECT_EQ(stats.find("fppn-serve stats requests 0 ok 0 errors 0 "), 0u) << stats;

  EXPECT_EQ(stop_daemon(daemon), 0) << slurp(log);
}

}  // namespace
