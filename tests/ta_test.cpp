// The timed-automata engine: clocks, guards, invariants, urgency, shared
// variables, quiescence and time-lock detection.
#include "ta/ta.hpp"

#include <gtest/gtest.h>

namespace fppn::ta {
namespace {

TEST(TaEngine, PeriodicEmitter) {
  // One automaton: loc0 [x <= 10] --x>=10, reset x, label tick--> loc0.
  TimedAutomaton a("ticker");
  a.add_location(TaLocation{"loc0", {ClockBound{"x", Rational(10)}}, false});
  TaTransition t;
  t.from = 0;
  t.to = 0;
  t.lower_bounds = {ClockBound{"x", Rational(10)}};
  t.resets = {"x"};
  t.label = "tick";
  a.add_transition(t);

  TaNetwork net;
  net.add(std::move(a));
  const TaRunResult run = net.run(Time::ms(35));
  ASSERT_EQ(run.events.size(), 3u);  // at 10, 20, 30
  EXPECT_EQ(run.events[0].time, Time::ms(10));
  EXPECT_EQ(run.events[2].time, Time::ms(30));
  EXPECT_FALSE(run.quiescent);
}

TEST(TaEngine, DataGuardsGateTransitions) {
  TimedAutomaton a("guarded");
  a.add_location(TaLocation{"wait", {}, false});
  a.add_location(TaLocation{"done", {}, false});
  TaTransition t;
  t.from = 0;
  t.to = 1;
  t.guard = [](const VarEnv& env) { return env.at("go") == 1; };
  t.label = "fired";
  a.add_transition(t);

  TaNetwork blocked;
  blocked.set_var("go", 0);
  blocked.add(a);
  const TaRunResult r1 = blocked.run(Time::ms(100));
  EXPECT_TRUE(r1.events.empty());
  EXPECT_TRUE(r1.quiescent);

  TaNetwork open;
  open.set_var("go", 1);
  open.add(a);
  const TaRunResult r2 = open.run(Time::ms(100));
  ASSERT_EQ(r2.events.size(), 1u);
  EXPECT_EQ(r2.events[0].time, Time::ms(0));
}

TEST(TaEngine, VariableUpdatesChainAutomata) {
  // Producer sets a flag at t=5; consumer fires as soon as it sees it.
  TimedAutomaton producer("producer");
  producer.add_location(TaLocation{"p0", {ClockBound{"x", Rational(5)}}, false});
  producer.add_location(TaLocation{"p1", {}, false});
  TaTransition set;
  set.from = 0;
  set.to = 1;
  set.lower_bounds = {ClockBound{"x", Rational(5)}};
  set.update = [](VarEnv& env) { env["flag"] = 1; };
  set.label = "set";
  producer.add_transition(set);

  TimedAutomaton consumer("consumer");
  consumer.add_location(TaLocation{"c0", {}, false});
  consumer.add_location(TaLocation{"c1", {}, false});
  TaTransition use;
  use.from = 0;
  use.to = 1;
  use.guard = [](const VarEnv& env) { return env.at("flag") == 1; };
  use.label = "use";
  consumer.add_transition(use);

  TaNetwork net;
  net.set_var("flag", 0);
  net.add(std::move(producer));
  net.add(std::move(consumer));
  const TaRunResult run = net.run(Time::ms(100));
  ASSERT_EQ(run.events.size(), 2u);
  EXPECT_EQ(run.events[0].label, "set");
  EXPECT_EQ(run.events[1].label, "use");
  EXPECT_EQ(run.events[1].time, Time::ms(5));  // same instant, causal order
  EXPECT_EQ(net.vars().at("flag"), 1);
}

TEST(TaEngine, InvariantForcesTimelyFiring) {
  // Invariant x <= 7 with an enabled-at-7 transition: fires exactly at 7.
  TimedAutomaton a("exact");
  a.add_location(TaLocation{"run", {ClockBound{"x", Rational(7)}}, false});
  a.add_location(TaLocation{"end", {}, false});
  TaTransition t;
  t.from = 0;
  t.to = 1;
  t.lower_bounds = {ClockBound{"x", Rational(7)}};
  t.label = "end";
  a.add_transition(t);
  TaNetwork net;
  net.add(std::move(a));
  const TaRunResult run = net.run(Time::ms(100));
  ASSERT_EQ(run.events.size(), 1u);
  EXPECT_EQ(run.events[0].time, Time::ms(7));
  EXPECT_TRUE(run.quiescent);
}

TEST(TaEngine, TimeLockDetected) {
  // Invariant expires with the only transition data-blocked: time-lock.
  TimedAutomaton a("stuck");
  a.add_location(TaLocation{"trap", {ClockBound{"x", Rational(3)}}, false});
  a.add_location(TaLocation{"out", {}, false});
  TaTransition t;
  t.from = 0;
  t.to = 1;
  t.guard = [](const VarEnv& env) { return env.at("never") == 1; };
  a.add_transition(t);
  TaNetwork net;
  net.set_var("never", 0);
  net.add(std::move(a));
  EXPECT_THROW((void)net.run(Time::ms(100)), std::logic_error);
}

TEST(TaEngine, UrgentLocationBlocksTimeElapse) {
  TimedAutomaton a("urgent");
  a.add_location(TaLocation{"u", {}, true});
  a.add_location(TaLocation{"rest", {}, false});
  TaTransition t;
  t.from = 0;
  t.to = 1;
  t.label = "leave";
  a.add_transition(t);
  TaNetwork net;
  net.add(std::move(a));
  const TaRunResult run = net.run(Time::ms(10));
  ASSERT_EQ(run.events.size(), 1u);
  EXPECT_EQ(run.events[0].time, Time::ms(0));
}

TEST(TaEngine, UrgentWithNothingEnabledIsTimeLock) {
  TimedAutomaton a("urgent-dead");
  a.add_location(TaLocation{"u", {}, true});
  a.add_location(TaLocation{"rest", {}, false});
  TaTransition t;
  t.from = 0;
  t.to = 1;
  t.lower_bounds = {ClockBound{"x", Rational(5)}};  // needs time, but urgent
  a.add_transition(t);
  TaNetwork net;
  net.add(std::move(a));
  EXPECT_THROW((void)net.run(Time::ms(10)), std::logic_error);
}

TEST(TaEngine, HorizonStopsBeforeNextEvent) {
  TimedAutomaton a("late");
  a.add_location(TaLocation{"l", {}, false});
  a.add_location(TaLocation{"m", {}, false});
  TaTransition t;
  t.from = 0;
  t.to = 1;
  t.lower_bounds = {ClockBound{"x", Rational(500)}};
  t.label = "late";
  a.add_transition(t);
  TaNetwork net;
  net.add(std::move(a));
  const TaRunResult run = net.run(Time::ms(100));
  EXPECT_TRUE(run.events.empty());
  EXPECT_EQ(run.end_time, Time::ms(100));
}

TEST(TaEngine, ClockResetScoping) {
  // Two clocks in one automaton: g is never reset, x is; a transition
  // guarded on both fires when the later bound is met.
  TimedAutomaton a("two-clocks");
  a.add_location(TaLocation{"s0", {}, false});
  a.add_location(TaLocation{"s1", {}, false});
  a.add_location(TaLocation{"s2", {}, false});
  TaTransition first;
  first.from = 0;
  first.to = 1;
  first.lower_bounds = {ClockBound{"g", Rational(10)}};
  first.resets = {"x"};
  first.label = "first";
  a.add_transition(first);
  TaTransition second;
  second.from = 1;
  second.to = 2;
  second.lower_bounds = {ClockBound{"x", Rational(5)}, ClockBound{"g", Rational(12)}};
  second.label = "second";
  a.add_transition(second);
  TaNetwork net;
  net.add(std::move(a));
  const TaRunResult run = net.run(Time::ms(100));
  ASSERT_EQ(run.events.size(), 2u);
  EXPECT_EQ(run.events[0].time, Time::ms(10));
  EXPECT_EQ(run.events[1].time, Time::ms(15));  // x>=5 dominates g>=12
}

TEST(TaEngine, RejectsMalformedAutomata) {
  TimedAutomaton a("bad");
  a.add_location(TaLocation{"only", {}, false});
  TaTransition t;
  t.from = 0;
  t.to = 7;  // out of range
  EXPECT_THROW(a.add_transition(t), std::invalid_argument);
  TaNetwork net;
  EXPECT_THROW(net.add(TimedAutomaton{"empty"}), std::invalid_argument);
}

}  // namespace
}  // namespace fppn::ta
