// Def. 2.2 process automata: explicit locations/guards/actions and the
// job-execution-run interpreter.
#include "fppn/automaton.hpp"

#include <gtest/gtest.h>

#include "fppn/semantics.hpp"

namespace fppn {
namespace {

std::shared_ptr<Automaton> squaring_automaton() {
  // l0 --x?I--> l1 --x := x*x--> l2 --x!c--> l0   (one job run = 3 steps)
  auto a = std::make_shared<Automaton>("l0", VarMap{{"x", Value{0.0}}});
  a->step("l0", ReadChannelAction{"x", "I"}, "l1");
  a->step("l1",
          AssignAction{"x",
                       [](const VarMap& vars) {
                         const double v = std::get<double>(vars.at("x"));
                         return Value{v * v};
                       }},
          "l2");
  a->step("l2", WriteChannelAction{"x", "c"}, "l0");
  return a;
}

struct Fixture {
  Network net;
  ProcessId p, q;
  ChannelId in, out;
};

Fixture make_fixture(std::shared_ptr<Automaton> a) {
  Fixture f;
  NetworkBuilder b;
  f.p = b.periodic("P", Duration::ms(100), Duration::ms(100),
                   automaton_behavior(std::move(a)));
  f.q = b.periodic("Q", Duration::ms(100), Duration::ms(100),
                   behavior([](JobContext& ctx) { ctx.write("O", ctx.read("c")); }));
  b.fifo("c", f.p, f.q);
  b.priority(f.p, f.q);
  f.in = b.external_input("I", f.p);
  f.out = b.external_output("O", f.q);
  f.net = std::move(b).build();
  return f;
}

TEST(Automaton, JobRunReturnsToInitialLocation) {
  const Fixture f = make_fixture(squaring_automaton());
  InputScripts in;
  in.emplace(f.in, std::vector<Value>{Value{3.0}, Value{4.0}});
  const auto res =
      run_zero_delay(f.net, InvocationPlan::build(f.net, Time::ms(200)), in);
  const auto& samples = res.histories.output_samples.at(f.out);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].value, Value{9.0});
  EXPECT_EQ(samples[1].value, Value{16.0});
}

TEST(Automaton, GuardedBranchingIsDeterministic) {
  // l0 --[x has data]--> write path; l0 --[no data]--> skip path.
  auto a = std::make_shared<Automaton>("l0", VarMap{{"x", no_data()}});
  Transition read;
  read.from = "l0";
  read.actions = {ReadChannelAction{"x", "I"}};
  read.to = "l1";
  a->transition(std::move(read));
  Transition hit;
  hit.from = "l1";
  hit.guard = [](const VarMap& v) { return has_data(v.at("x")); };
  hit.actions = {WriteChannelAction{"x", "c"}};
  hit.to = "l0";
  a->transition(std::move(hit));
  Transition miss;
  miss.from = "l1";
  miss.guard = [](const VarMap& v) { return !has_data(v.at("x")); };
  miss.actions = {AssignAction{"x", [](const VarMap&) { return Value{-1.0}; }},
                  WriteChannelAction{"x", "c"}};
  miss.to = "l0";
  a->transition(std::move(miss));

  const Fixture f = make_fixture(std::move(a));
  InputScripts in;
  in.emplace(f.in, std::vector<Value>{Value{7.0}});  // only one sample for two jobs
  const auto res =
      run_zero_delay(f.net, InvocationPlan::build(f.net, Time::ms(200)), in);
  const auto& samples = res.histories.output_samples.at(f.out);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].value, Value{7.0});
  EXPECT_EQ(samples[1].value, Value{-1.0});
}

TEST(Automaton, NondeterminismDetected) {
  auto a = std::make_shared<Automaton>("l0", VarMap{});
  a->step("l0", AssignAction{"x", [](const VarMap&) { return Value{1.0}; }}, "l0");
  Transition second;
  second.from = "l0";
  second.actions = {AssignAction{"x", [](const VarMap&) { return Value{2.0}; }}};
  second.to = "l0";
  a->transition(std::move(second));

  NetworkBuilder b;
  const ProcessId p = b.periodic("P", Duration::ms(100), Duration::ms(100),
                                 automaton_behavior(std::move(a)));
  const Network net = std::move(b).build();
  ExecutionState s(net);
  EXPECT_THROW(s.run_job(p, Time::ms(0)), std::logic_error);
}

TEST(Automaton, StuckAutomatonDetected) {
  auto a = std::make_shared<Automaton>("l0", VarMap{});
  a->step("l0", AssignAction{"x", [](const VarMap&) { return Value{1.0}; }}, "dead");
  // No transition out of "dead".
  NetworkBuilder b;
  const ProcessId p = b.periodic("P", Duration::ms(100), Duration::ms(100),
                                 automaton_behavior(std::move(a)));
  const Network net = std::move(b).build();
  ExecutionState s(net);
  EXPECT_THROW(s.run_job(p, Time::ms(0)), std::logic_error);
}

TEST(Automaton, DivergenceBounded) {
  // l0 -> l1 -> l0' loop that never returns to initial... here: a two-
  // location livelock that never reaches l0 again.
  auto a = std::make_shared<Automaton>("l0", VarMap{});
  a->step("l0", AssignAction{"x", [](const VarMap&) { return Value{0.0}; }}, "l1");
  a->step("l1", AssignAction{"x", [](const VarMap&) { return Value{0.0}; }}, "l2");
  a->step("l2", AssignAction{"x", [](const VarMap&) { return Value{0.0}; }}, "l1");
  NetworkBuilder b;
  const ProcessId p = b.periodic("P", Duration::ms(100), Duration::ms(100),
                                 automaton_behavior(std::move(a), /*max_steps=*/100));
  const Network net = std::move(b).build();
  ExecutionState s(net);
  EXPECT_THROW(s.run_job(p, Time::ms(0)), std::logic_error);
}

TEST(Automaton, VariablesPersistAcrossJobRuns) {
  // An accumulator automaton: x grows by the input each run.
  auto a = std::make_shared<Automaton>("l0",
                                       VarMap{{"x", Value{0.0}}, {"in", no_data()}});
  a->step("l0", ReadChannelAction{"in", "I"}, "l1");
  a->step("l1",
          AssignAction{"x",
                       [](const VarMap& v) {
                         const double acc = std::get<double>(v.at("x"));
                         const double add =
                             has_data(v.at("in")) ? std::get<double>(v.at("in")) : 0.0;
                         return Value{acc + add};
                       }},
          "l2");
  a->step("l2", WriteChannelAction{"x", "c"}, "l0");

  const Fixture f = make_fixture(std::move(a));
  InputScripts in;
  in.emplace(f.in, std::vector<Value>{Value{1.0}, Value{2.0}, Value{3.0}});
  const auto res =
      run_zero_delay(f.net, InvocationPlan::build(f.net, Time::ms(300)), in);
  const auto& samples = res.histories.output_samples.at(f.out);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[2].value, Value{6.0});  // 1+2+3
}

TEST(Automaton, WriteFromUndefinedVariableFails) {
  auto a = std::make_shared<Automaton>("l0", VarMap{});
  a->step("l0", WriteChannelAction{"ghost", "c"}, "l0");
  NetworkBuilder b;
  const ProcessId p = b.periodic("P", Duration::ms(100), Duration::ms(100),
                                 automaton_behavior(std::move(a)));
  const ProcessId q =
      b.periodic("Q", Duration::ms(100), Duration::ms(100), no_op_behavior());
  b.fifo("c", p, q);
  b.priority(p, q);
  const Network net = std::move(b).build();
  ExecutionState s(net);
  EXPECT_THROW(s.run_job(p, Time::ms(0)), std::logic_error);
}

TEST(Automaton, LocationBookkeeping) {
  Automaton a("init", VarMap{});
  a.location("other");
  a.location("other");  // idempotent
  EXPECT_EQ(a.locations().size(), 2u);
  EXPECT_EQ(a.initial_location(), "init");
  a.step("init", AssignAction{"x", [](const VarMap&) { return Value{1.0}; }}, "third");
  EXPECT_EQ(a.locations().size(), 3u);
  EXPECT_EQ(a.from("init").size(), 1u);
  EXPECT_TRUE(a.from("third").empty());
}

}  // namespace
}  // namespace fppn
