// Schedule cache: entry round-trip through the versioned text format,
// memory/disk lookup semantics, validation of mismatched or corrupt
// entries, and the loud-failure contract for bad cache directories.
#include "sched/schedule_cache.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <thread>

#include "apps/fig1.hpp"
#include "io/schedule_format.hpp"
#include "sched/list_scheduler.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory under the system temp dir.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("fppn_cache_test_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

DerivedTaskGraph fig1_graph() {
  const auto app = apps::build_fig1();
  return derive_task_graph(app.net, app.fig3_wcets());
}

sched::StrategyResult evaluate(const TaskGraph& tg, std::int64_t processors) {
  sched::StrategyResult result;
  result.strategy = "alap-edf";
  result.detail = "list schedule, SP heuristic alap-edf";
  result.schedule = list_schedule(tg, PriorityHeuristic::kAlapEdf, processors);
  sched::finalize_result(tg, result);
  return result;
}

sched::CacheKey key_for(const TaskGraph& tg, std::int64_t processors) {
  sched::StrategyOptions opts;
  opts.processors = processors;
  opts.seed = 1;
  opts.max_iterations = 400;
  opts.restarts = 1;
  return sched::make_cache_key(tg, "alap-edf", opts);
}

TEST(ScheduleFormat, EntryRoundTripsBitIdentically) {
  const auto derived = fig1_graph();
  const auto result = evaluate(derived.graph, 2);

  io::ScheduleEntry entry;
  entry.fingerprint = fingerprint(derived.graph);
  entry.strategy = result.strategy;
  // Full-range uint64 seed: values >= 2^63 must survive the round-trip.
  entry.seed = std::numeric_limits<std::uint64_t>::max() - 6;
  entry.processors = 2;
  entry.max_iterations = 400;
  entry.restarts = 1;
  entry.detail = result.detail;
  entry.schedule = result.schedule;

  const std::string text = io::write_schedule_entry(entry);
  const io::ScheduleEntry back = io::read_schedule_entry_string(text);
  EXPECT_EQ(back.fingerprint, entry.fingerprint);
  EXPECT_EQ(back.strategy, entry.strategy);
  EXPECT_EQ(back.seed, entry.seed);
  EXPECT_EQ(back.processors, entry.processors);
  EXPECT_EQ(back.max_iterations, entry.max_iterations);
  EXPECT_EQ(back.restarts, entry.restarts);
  EXPECT_EQ(back.detail, entry.detail);
  ASSERT_EQ(back.schedule.job_count(), entry.schedule.job_count());
  for (std::size_t i = 0; i < entry.schedule.job_count(); ++i) {
    const JobId id(i);
    ASSERT_TRUE(back.schedule.is_placed(id));
    EXPECT_EQ(back.schedule.placement(id).processor,
              entry.schedule.placement(id).processor);
    EXPECT_EQ(back.schedule.placement(id).start, entry.schedule.placement(id).start);
  }
}

TEST(ScheduleFormat, PartialSchedulesRoundTrip) {
  io::ScheduleEntry entry;
  entry.strategy = "x";
  entry.processors = 2;
  entry.schedule = StaticSchedule(3, 2);
  entry.schedule.place(JobId(1), ProcessorId(0), Time() + Duration::ratio_ms(40, 3));
  const io::ScheduleEntry back =
      io::read_schedule_entry_string(io::write_schedule_entry(entry));
  EXPECT_FALSE(back.schedule.is_placed(JobId(0)));
  ASSERT_TRUE(back.schedule.is_placed(JobId(1)));
  EXPECT_EQ(back.schedule.placement(JobId(1)).start.value(), Rational(40, 3));
  EXPECT_FALSE(back.schedule.is_placed(JobId(2)));
}

TEST(ScheduleFormat, RejectsWrongVersionAndCorruption) {
  const auto derived = fig1_graph();
  io::ScheduleEntry entry;
  entry.strategy = "alap-edf";
  entry.processors = 2;
  entry.schedule = evaluate(derived.graph, 2).schedule;
  std::string text = io::write_schedule_entry(entry);

  {
    std::string wrong = text;
    wrong.replace(wrong.find("v1"), 2, "v9");
    EXPECT_THROW((void)io::read_schedule_entry_string(wrong), io::ParseError);
  }
  {
    // Truncation: drop the "end" trailer and the last placement line.
    const std::string truncated = text.substr(0, text.rfind("place"));
    EXPECT_THROW((void)io::read_schedule_entry_string(truncated), io::ParseError);
  }
  {
    std::string bad = text;
    bad.replace(bad.find("place 0"), 7, "place 999");
    EXPECT_THROW((void)io::read_schedule_entry_string(bad), io::ParseError);
  }
  EXPECT_THROW((void)io::read_schedule_entry_string("not a schedule\n"), io::ParseError);
}

TEST(ScheduleFormat, TrailingGarbageAfterEndIsAParseError) {
  // A truncated entry concatenated with another file must not half-parse:
  // anything non-blank after "end" is rejected. Trailing blank lines are
  // harmless.
  const auto derived = fig1_graph();
  io::ScheduleEntry entry;
  entry.strategy = "alap-edf";
  entry.processors = 2;
  entry.schedule = evaluate(derived.graph, 2).schedule;
  const std::string text = io::write_schedule_entry(entry);

  EXPECT_THROW((void)io::read_schedule_entry_string(text + "stray line\n"),
               io::ParseError);
  EXPECT_THROW((void)io::read_schedule_entry_string(text + text), io::ParseError);
  EXPECT_NO_THROW((void)io::read_schedule_entry_string(text + "\n  \n"));
}

TEST(ScheduleCache, TrailingGarbageDiskEntryIsAMissNotAnError) {
  // The cache keeps its forgiving contract for the stricter parser: a
  // disk entry with appended garbage is a rejected miss, never an error
  // and never a half-parsed hit.
  const TempDir dir("trailing");
  const auto derived = fig1_graph();
  const auto key = key_for(derived.graph, 2);
  {
    sched::ScheduleCache writer(dir.path());
    writer.store(key, evaluate(derived.graph, 2));
  }
  {
    std::ofstream out(fs::path(dir.path()) / key.filename(), std::ios::app);
    out << "garbage appended after a complete entry\n";
  }
  sched::ScheduleCache reader(dir.path());
  EXPECT_FALSE(reader.lookup(key, derived.graph).has_value());
  EXPECT_EQ(reader.stats().disk_rejects, 1u);
  EXPECT_EQ(reader.stats().misses, 1u);
}

TEST(ScheduleCache, MemoryHitAfterStore) {
  const auto derived = fig1_graph();
  sched::ScheduleCache cache;
  const auto key = key_for(derived.graph, 2);
  EXPECT_FALSE(cache.lookup(key, derived.graph).has_value());

  const auto result = evaluate(derived.graph, 2);
  cache.store(key, result);
  const auto hit = cache.lookup(key, derived.graph);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->strategy, result.strategy);
  EXPECT_EQ(hit->detail, result.detail);
  EXPECT_EQ(hit->makespan, result.makespan);
  EXPECT_EQ(hit->feasible, result.feasible);
  EXPECT_EQ(hit->deadline_violations, result.deadline_violations);

  const sched::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST(ScheduleCache, KeyDiscriminatesEveryField) {
  const auto derived = fig1_graph();
  sched::ScheduleCache cache;
  const auto key = key_for(derived.graph, 2);
  cache.store(key, evaluate(derived.graph, 2));

  sched::CacheKey other = key;
  other.seed = 2;
  EXPECT_FALSE(cache.lookup(other, derived.graph).has_value()) << "seed";
  other = key;
  other.strategy = "b-level";
  EXPECT_FALSE(cache.lookup(other, derived.graph).has_value()) << "strategy";
  other = key;
  other.processors = 3;
  EXPECT_FALSE(cache.lookup(other, derived.graph).has_value()) << "processors";
  other = key;
  other.max_iterations = 2000;
  EXPECT_FALSE(cache.lookup(other, derived.graph).has_value()) << "iterations";
  other = key;
  other.restarts = 5;
  EXPECT_FALSE(cache.lookup(other, derived.graph).has_value()) << "restarts";
  other = key;
  other.fingerprint ^= 1;
  EXPECT_FALSE(cache.lookup(other, derived.graph).has_value()) << "fingerprint";
}

TEST(ScheduleCache, DiskEntrySurvivesNewCacheInstance) {
  const TempDir dir("persist");
  const auto derived = fig1_graph();
  const auto key = key_for(derived.graph, 2);
  const auto result = evaluate(derived.graph, 2);
  {
    sched::ScheduleCache writer(dir.path());
    writer.store(key, result);
  }
  sched::ScheduleCache reader(dir.path());
  const auto hit = reader.lookup(key, derived.graph);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->makespan, result.makespan);
  EXPECT_EQ(hit->detail, result.detail);
  for (std::size_t i = 0; i < derived.graph.job_count(); ++i) {
    const JobId id(i);
    EXPECT_EQ(hit->schedule.placement(id).processor,
              result.schedule.placement(id).processor);
    EXPECT_EQ(hit->schedule.placement(id).start, result.schedule.placement(id).start);
  }
}

TEST(ScheduleCache, CorruptDiskEntryIsAMissNotAnError) {
  const TempDir dir("corrupt");
  const auto derived = fig1_graph();
  const auto key = key_for(derived.graph, 2);
  {
    std::ofstream out(fs::path(dir.path()) / key.filename());
    out << "garbage\n";
  }
  sched::ScheduleCache cache(dir.path());
  EXPECT_FALSE(cache.lookup(key, derived.graph).has_value());
  EXPECT_EQ(cache.stats().disk_rejects, 1u);
  // A store then repairs the entry in place.
  cache.store(key, evaluate(derived.graph, 2));
  sched::ScheduleCache fresh(dir.path());
  EXPECT_TRUE(fresh.lookup(key, derived.graph).has_value());
}

TEST(ScheduleCache, MismatchedJobCountIsRejected) {
  // Fingerprint-collision safety net: an entry whose schedule cannot index
  // the queried graph must never be returned.
  const TempDir dir("mismatch");
  const auto derived = fig1_graph();
  const auto key = key_for(derived.graph, 2);
  sched::ScheduleCache cache(dir.path());
  cache.store(key, evaluate(derived.graph, 2));

  TaskGraph bigger(derived.graph.hyperperiod());
  for (std::size_t i = 0; i < derived.graph.job_count() + 1; ++i) {
    Job j;
    j.process = ProcessId{i};
    j.arrival = Time::ms(0);
    j.deadline = Time::ms(100);
    j.wcet = Duration::ms(1);
    j.name = "g" + std::to_string(i);
    bigger.add_job(j);
  }
  EXPECT_FALSE(cache.lookup(key, bigger).has_value());
  EXPECT_GE(cache.stats().disk_rejects, 1u);
}

TEST(ScheduleCache, ConcurrentSameKeyStoresNeverTearEntries) {
  // Writers use unique temp files + atomic rename, so racing stores of
  // one key must all succeed and leave a complete, parseable entry.
  const TempDir dir("race");
  const auto derived = fig1_graph();
  const auto key = key_for(derived.graph, 2);
  const auto result = evaluate(derived.graph, 2);
  sched::ScheduleCache cache(dir.path());

  std::vector<std::thread> writers;
  for (int w = 0; w < 8; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        cache.store(key, result);
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }

  sched::ScheduleCache reader(dir.path());
  const auto hit = reader.lookup(key, derived.graph);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->makespan, result.makespan);
  EXPECT_EQ(reader.stats().disk_rejects, 0u);
  // No leftover temp files after the last rename.
  std::size_t stray_tmp = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    if (e.path().string().find(".tmp") != std::string::npos) {
      ++stray_tmp;
    }
  }
  EXPECT_EQ(stray_tmp, 0u);
}

TEST(ScheduleCache, BadDirectoryFailsLoudly) {
  EXPECT_THROW((void)sched::ScheduleCache("/nonexistent-parent-xyz/cache"),
               std::runtime_error);
  const TempDir dir("notadir");
  const std::string file_path = (fs::path(dir.path()) / "a_file").string();
  std::ofstream(file_path) << "x";
  EXPECT_THROW((void)sched::ScheduleCache{file_path}, std::runtime_error);
}

TEST(ScheduleCache, CreatesLeafDirectory) {
  const TempDir dir("leaf");
  const std::string leaf = (fs::path(dir.path()) / "sub").string();
  sched::ScheduleCache cache(leaf);
  EXPECT_TRUE(fs::is_directory(leaf));
  EXPECT_EQ(cache.directory(), leaf);
}

TEST(ScheduleFormat, RejectsLeadingPlusInSignedFields) {
  // The documented grammar for signed integers is -?[0-9]+: a leading '+'
  // (which raw stoll tolerates) is a parse error in every schedule-entry
  // field, same as parse_u64's long-standing sign check.
  const auto derived = fig1_graph();
  io::ScheduleEntry entry;
  entry.strategy = "alap-edf";
  entry.processors = 2;
  entry.schedule = evaluate(derived.graph, 2).schedule;
  const std::string text = io::write_schedule_entry(entry);

  const auto with = [&](const std::string& from, const std::string& to) {
    std::string mutated = text;
    mutated.replace(mutated.find(from), from.size(), to);
    return mutated;
  };
  EXPECT_THROW((void)io::read_schedule_entry_string(with("processors 2", "processors +2")),
               io::ParseError);
  EXPECT_THROW((void)io::read_schedule_entry_string(with("budget 0 0", "budget +0 0")),
               io::ParseError);
  EXPECT_THROW((void)io::read_schedule_entry_string(with("seed 0", "seed +0")),
               io::ParseError);
  EXPECT_THROW((void)io::read_schedule_entry_string(with("jobs 10", "jobs +10")),
               io::ParseError);
  EXPECT_THROW((void)io::read_schedule_entry_string(with("place 0", "place +0")),
               io::ParseError);
}

/// Entry file names (no index, no temp files) currently in `dir`.
std::vector<std::string> entry_files(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.size() > 6 && name.compare(name.size() - 6, 6, ".sched") == 0) {
      files.push_back(name);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

sched::CacheKey seeded_key(const sched::CacheKey& base, std::uint64_t seed) {
  sched::CacheKey key = base;
  key.seed = seed;
  return key;
}

TEST(ScheduleCache, EvictionKeepsTheNewestEntries) {
  const TempDir dir("evict");
  const auto derived = fig1_graph();
  const auto result = evaluate(derived.graph, 2);
  const auto base = key_for(derived.graph, 2);

  sched::ScheduleCache cache(dir.path(), 3);
  EXPECT_EQ(cache.max_entries(), 3u);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    cache.store(seeded_key(base, seed), result);
  }
  const std::vector<std::string> files = entry_files(dir.path());
  ASSERT_EQ(files.size(), 3u);
  // Oldest two (seeds 1, 2) evicted; newest three kept.
  for (const std::uint64_t seed : {3u, 4u, 5u}) {
    EXPECT_NE(std::find(files.begin(), files.end(),
                        seeded_key(base, seed).filename()),
              files.end())
        << "seed " << seed;
  }
  EXPECT_EQ(cache.stats().evictions, 2u);
  // The evicted entries are disk misses for a fresh process; the kept
  // ones still hit.
  sched::ScheduleCache reader(dir.path(), 3);
  EXPECT_FALSE(reader.lookup(seeded_key(base, 1), derived.graph).has_value());
  EXPECT_TRUE(reader.lookup(seeded_key(base, 5), derived.graph).has_value());
}

/// Size in bytes of one entry file for `result` under `key`, measured by
/// storing it into a throwaway unbounded cache.
std::uintmax_t entry_file_size(const sched::CacheKey& key,
                               const sched::StrategyResult& result) {
  const TempDir probe("probesize");
  sched::ScheduleCache cache(probe.path());
  cache.store(key, result);
  return fs::file_size(fs::path(probe.path()) / key.filename());
}

TEST(ScheduleCache, ByteBoundEvictsOldestFirst) {
  const auto derived = fig1_graph();
  const auto result = evaluate(derived.graph, 2);
  const auto base = key_for(derived.graph, 2);
  // Single-digit seeds keep every entry file the same size.
  const std::uintmax_t entry_size = entry_file_size(seeded_key(base, 1), result);

  const TempDir dir("bytebound");
  // Room for two entries but not three.
  sched::ScheduleCache cache(dir.path(), 0, 2 * entry_size + entry_size / 2);
  EXPECT_EQ(cache.max_entries(), 0u);
  EXPECT_EQ(cache.max_bytes(), 2 * entry_size + entry_size / 2);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    cache.store(seeded_key(base, seed), result);
  }
  const std::vector<std::string> files = entry_files(dir.path());
  ASSERT_EQ(files.size(), 2u);
  for (const std::uint64_t seed : {3u, 4u}) {
    EXPECT_NE(std::find(files.begin(), files.end(),
                        seeded_key(base, seed).filename()),
              files.end())
        << "seed " << seed;
  }
  EXPECT_EQ(cache.stats().evictions, 2u);
  // Evicted entries are disk misses for a fresh process; kept ones hit.
  sched::ScheduleCache reader(dir.path(), 0, 2 * entry_size + entry_size / 2);
  EXPECT_FALSE(reader.lookup(seeded_key(base, 1), derived.graph).has_value());
  EXPECT_TRUE(reader.lookup(seeded_key(base, 4), derived.graph).has_value());
}

TEST(ScheduleCache, ByteBoundSmallerThanOneEntryEmptiesTheDirectory) {
  // The bound is a hard cap, not advisory: an entry bigger than the whole
  // budget is evicted right after its own store.
  const TempDir dir("tinybytes");
  const auto derived = fig1_graph();
  const auto base = key_for(derived.graph, 2);
  sched::ScheduleCache cache(dir.path(), 0, 1);
  cache.store(seeded_key(base, 1), evaluate(derived.graph, 2));
  EXPECT_TRUE(entry_files(dir.path()).empty());
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The memory tier is not evicted — the in-process memo still answers.
  EXPECT_TRUE(cache.lookup(seeded_key(base, 1), derived.graph).has_value());
}

TEST(ScheduleCache, EntryAndByteBoundsCombine) {
  // Whichever bound is tighter wins. Entry bound 3 but byte budget for 2:
  // two survive. Both bounds honored on every store.
  const auto derived = fig1_graph();
  const auto result = evaluate(derived.graph, 2);
  const auto base = key_for(derived.graph, 2);
  const std::uintmax_t entry_size = entry_file_size(seeded_key(base, 1), result);

  const TempDir dir("bothbounds");
  sched::ScheduleCache cache(dir.path(), 3, 2 * entry_size + entry_size / 2);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    cache.store(seeded_key(base, seed), result);
  }
  EXPECT_EQ(entry_files(dir.path()).size(), 2u);
}

TEST(ScheduleCache, GcHonorsByteBound) {
  // Entries written by an unbounded writer (no index maintenance) are
  // reconciled and evicted down to the byte budget by a later gc() —
  // the `fppn_tool cache-gc --cache-max-bytes B` path.
  const auto derived = fig1_graph();
  const auto result = evaluate(derived.graph, 2);
  const auto base = key_for(derived.graph, 2);
  const std::uintmax_t entry_size = entry_file_size(seeded_key(base, 1), result);

  const TempDir dir("gcbytes");
  {
    sched::ScheduleCache writer(dir.path());
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      writer.store(seeded_key(base, seed), result);
    }
  }
  ASSERT_EQ(entry_files(dir.path()).size(), 4u);

  sched::ScheduleCache bounded(dir.path(), 0, 2 * entry_size + entry_size / 2);
  const sched::CacheGcStats gc = bounded.gc();
  EXPECT_EQ(gc.kept, 2u);
  EXPECT_EQ(gc.evicted, 2u);
  EXPECT_EQ(entry_files(dir.path()).size(), 2u);
}

TEST(ScheduleCache, DiskHitRefreshesRecency) {
  // LRU, not FIFO: reading an old entry from disk must protect it from
  // the next eviction round.
  const TempDir dir("lru");
  const auto derived = fig1_graph();
  const auto result = evaluate(derived.graph, 2);
  const auto base = key_for(derived.graph, 2);
  {
    sched::ScheduleCache writer(dir.path(), 2);
    writer.store(seeded_key(base, 1), result);
    writer.store(seeded_key(base, 2), result);
  }
  sched::ScheduleCache cache(dir.path(), 2);
  ASSERT_TRUE(cache.lookup(seeded_key(base, 1), derived.graph).has_value());
  cache.store(seeded_key(base, 3), result);  // bound 2: evicts seed 2, not seed 1
  const std::vector<std::string> files = entry_files(dir.path());
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(std::find(files.begin(), files.end(), seeded_key(base, 1).filename()),
            files.end());
  EXPECT_NE(std::find(files.begin(), files.end(), seeded_key(base, 3).filename()),
            files.end());
}

TEST(ScheduleCache, MissingIndexIsRebuiltFromEntryFiles) {
  const TempDir dir("rebuild");
  const auto derived = fig1_graph();
  const auto base = key_for(derived.graph, 2);
  {
    sched::ScheduleCache writer(dir.path());
    writer.store(seeded_key(base, 1), evaluate(derived.graph, 2));
    writer.store(seeded_key(base, 2), evaluate(derived.graph, 2));
  }
  fs::remove(fs::path(dir.path()) / io::kCacheIndexFilename);

  sched::ScheduleCache cache(dir.path());
  const sched::CacheGcStats gc = cache.gc();
  EXPECT_TRUE(gc.index_rebuilt);
  EXPECT_EQ(gc.kept, 2u);
  EXPECT_EQ(gc.evicted, 0u);
  EXPECT_TRUE(fs::exists(fs::path(dir.path()) / io::kCacheIndexFilename));
  // Entries survived the rebuild and still hit.
  EXPECT_TRUE(cache.lookup(seeded_key(base, 1), derived.graph).has_value());
}

TEST(ScheduleCache, CorruptIndexIsRebuiltNotAnError) {
  const TempDir dir("badindex");
  const auto derived = fig1_graph();
  const auto base = key_for(derived.graph, 2);
  sched::ScheduleCache cache(dir.path(), 2);
  cache.store(seeded_key(base, 1), evaluate(derived.graph, 2));
  {
    std::ofstream out(fs::path(dir.path()) / io::kCacheIndexFilename);
    out << "not an index at all\n";
  }
  // The next store survives the damaged index (rebuild, then bound).
  cache.store(seeded_key(base, 2), evaluate(derived.graph, 2));
  EXPECT_EQ(entry_files(dir.path()).size(), 2u);
  sched::ScheduleCache fresh(dir.path(), 2);
  const sched::CacheGcStats gc = fresh.gc();
  EXPECT_EQ(gc.kept, 2u);
  EXPECT_TRUE(fresh.lookup(seeded_key(base, 2), derived.graph).has_value());
}

TEST(ScheduleCache, GcBoundsAPrepopulatedDirectoryWithoutIndex) {
  // A cache directory from before the index existed (or shared from
  // another machine) must gc cleanly: rebuild by file modification time,
  // then evict down to the bound.
  const TempDir dir("noindex");
  const auto derived = fig1_graph();
  const auto base = key_for(derived.graph, 2);
  {
    sched::ScheduleCache writer(dir.path());
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      writer.store(seeded_key(base, seed), evaluate(derived.graph, 2));
    }
  }
  fs::remove(fs::path(dir.path()) / io::kCacheIndexFilename);
  sched::ScheduleCache cache(dir.path(), 2);
  const sched::CacheGcStats gc = cache.gc();
  EXPECT_TRUE(gc.index_rebuilt);
  EXPECT_EQ(gc.kept, 2u);
  EXPECT_EQ(gc.evicted, 2u);
  EXPECT_EQ(entry_files(dir.path()).size(), 2u);
}

TEST(ScheduleCache, EvictionAcrossRacingInstancesHoldsTheBound) {
  // Several cache instances (standing in for separate processes) race
  // stores of distinct keys into one bounded directory. Lost index
  // updates are legal mid-race; the reconcile pass inside every store —
  // and a final gc — must still hold the directory at the bound, with
  // every surviving entry complete and parseable.
  const TempDir dir("race_evict");
  const auto derived = fig1_graph();
  const auto result = evaluate(derived.graph, 2);
  const auto base = key_for(derived.graph, 2);
  constexpr std::size_t kBound = 5;

  sched::ScheduleCache a(dir.path(), kBound);
  sched::ScheduleCache b(dir.path(), kBound);
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      sched::ScheduleCache& cache = (w % 2 == 0) ? a : b;
      for (std::uint64_t i = 0; i < 10; ++i) {
        cache.store(seeded_key(base, static_cast<std::uint64_t>(w) * 100 + i), result);
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }

  sched::ScheduleCache settle(dir.path(), kBound);
  (void)settle.gc();
  const std::vector<std::string> files = entry_files(dir.path());
  EXPECT_LE(files.size(), kBound);
  for (const std::string& file : files) {
    std::ifstream in(fs::path(dir.path()) / file);
    EXPECT_NO_THROW((void)io::read_schedule_entry(in)) << file;
  }
  // The cache keeps working after the race: a fresh store lands and is
  // the newest entry.
  settle.store(seeded_key(base, 999), result);
  EXPECT_LE(entry_files(dir.path()).size(), kBound);
  sched::ScheduleCache reader(dir.path(), kBound);
  EXPECT_TRUE(reader.lookup(seeded_key(base, 999), derived.graph).has_value());
}

TEST(ScheduleCache, FeasibleSchedulesEnumeratesDiskEntries) {
  const TempDir dir("feasible");
  const auto derived = fig1_graph();
  const std::uint64_t fp = fingerprint(derived.graph);
  const auto base = key_for(derived.graph, 2);
  {
    sched::ScheduleCache writer(dir.path());
    writer.store(seeded_key(base, 1), evaluate(derived.graph, 2));
    writer.store(seeded_key(base, 2), evaluate(derived.graph, 2));
    // Infeasible on one processor (10×25 ms of work in a 200 ms frame):
    // enumerated but filtered out by the feasibility check.
    auto m1 = key_for(derived.graph, 1);
    m1.processors = 1;
    writer.store(m1, evaluate(derived.graph, 1));
    // A different fingerprint must not leak in.
    auto foreign = seeded_key(base, 3);
    foreign.fingerprint ^= 1;
    writer.store(foreign, evaluate(derived.graph, 2));
  }
  sched::ScheduleCache cache(dir.path());
  const auto schedules = cache.feasible_schedules(fp, derived.graph);
  EXPECT_EQ(schedules.size(), 2u);
  for (const StaticSchedule& s : schedules) {
    EXPECT_TRUE(s.check_feasibility(derived.graph).feasible());
  }
  // Deterministic: repeated enumeration returns the same order.
  const auto again = cache.feasible_schedules(fp, derived.graph);
  ASSERT_EQ(again.size(), schedules.size());
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    for (std::size_t j = 0; j < derived.graph.job_count(); ++j) {
      const JobId id(j);
      EXPECT_EQ(again[i].placement(id).start, schedules[i].placement(id).start);
    }
  }
}

TEST(ScheduleCache, FeasibleSchedulesWorksInMemoryOnly) {
  const auto derived = fig1_graph();
  const std::uint64_t fp = fingerprint(derived.graph);
  const auto base = key_for(derived.graph, 2);
  sched::ScheduleCache cache;
  EXPECT_TRUE(cache.feasible_schedules(fp, derived.graph).empty());
  cache.store(seeded_key(base, 1), evaluate(derived.graph, 2));
  EXPECT_EQ(cache.feasible_schedules(fp, derived.graph).size(), 1u);
  EXPECT_TRUE(cache.feasible_schedules(fp ^ 1, derived.graph).empty());
}

}  // namespace
}  // namespace fppn
