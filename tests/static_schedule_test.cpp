// Def. 3.2: static schedules and the four feasibility constraints.
#include "sched/static_schedule.hpp"

#include <gtest/gtest.h>

namespace fppn {
namespace {

Job make_job(const std::string& name, std::int64_t a, std::int64_t d, std::int64_t c) {
  Job j;
  j.process = ProcessId{0};
  j.arrival = Time::ms(a);
  j.deadline = Time::ms(d);
  j.wcet = Duration::ms(c);
  j.name = name;
  return j;
}

TaskGraph two_job_chain() {
  TaskGraph tg(Duration::ms(100));
  const JobId a = tg.add_job(make_job("A", 0, 50, 10));
  const JobId b = tg.add_job(make_job("B", 0, 100, 10));
  tg.add_edge(a, b);
  return tg;
}

TEST(StaticSchedule, FeasibleChain) {
  const TaskGraph tg = two_job_chain();
  StaticSchedule s(tg.job_count(), 1);
  s.place(JobId(0), ProcessorId(0), Time::ms(0));
  s.place(JobId(1), ProcessorId(0), Time::ms(10));
  const auto report = s.check_feasibility(tg);
  EXPECT_TRUE(report.feasible()) << report.to_string(tg);
  EXPECT_EQ(s.makespan(tg), Time::ms(20));
}

TEST(StaticSchedule, ArrivalViolation) {
  const TaskGraph tg = two_job_chain();
  StaticSchedule s(tg.job_count(), 2);
  s.place(JobId(0), ProcessorId(0), Time::ms(0));
  TaskGraph late = two_job_chain();
  late.job(JobId(1)).arrival = Time::ms(40);
  s.place(JobId(1), ProcessorId(1), Time::ms(20));
  const auto report = s.check_feasibility(late);
  ASSERT_FALSE(report.feasible());
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kArrival);
}

TEST(StaticSchedule, DeadlineViolation) {
  const TaskGraph tg = two_job_chain();
  StaticSchedule s(tg.job_count(), 1);
  s.place(JobId(0), ProcessorId(0), Time::ms(45));  // ends 55 > D=50
  s.place(JobId(1), ProcessorId(0), Time::ms(55));
  const auto report = s.check_feasibility(tg);
  ASSERT_FALSE(report.feasible());
  bool saw_deadline = false;
  for (const Violation& v : report.violations) {
    saw_deadline |= v.kind == ViolationKind::kDeadline;
  }
  EXPECT_TRUE(saw_deadline);
}

TEST(StaticSchedule, PrecedenceViolation) {
  const TaskGraph tg = two_job_chain();
  StaticSchedule s(tg.job_count(), 2);
  s.place(JobId(0), ProcessorId(0), Time::ms(0));   // ends 10
  s.place(JobId(1), ProcessorId(1), Time::ms(5));   // starts before pred ends
  const auto report = s.check_feasibility(tg);
  ASSERT_FALSE(report.feasible());
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kPrecedence);
  EXPECT_EQ(report.violations[0].other, JobId(1));
}

TEST(StaticSchedule, MutexViolation) {
  TaskGraph tg(Duration::ms(100));
  tg.add_job(make_job("A", 0, 100, 10));
  tg.add_job(make_job("B", 0, 100, 10));
  StaticSchedule s(tg.job_count(), 1);
  s.place(JobId(0), ProcessorId(0), Time::ms(0));
  s.place(JobId(1), ProcessorId(0), Time::ms(5));  // overlaps on M1
  const auto report = s.check_feasibility(tg);
  ASSERT_FALSE(report.feasible());
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kMutex);
}

TEST(StaticSchedule, BackToBackOnSameProcessorIsFine) {
  // e_i == s_j satisfies both mutex and precedence (non-strict).
  const TaskGraph tg = two_job_chain();
  StaticSchedule s(tg.job_count(), 1);
  s.place(JobId(0), ProcessorId(0), Time::ms(0));
  s.place(JobId(1), ProcessorId(0), Time::ms(10));
  EXPECT_TRUE(s.check_feasibility(tg).feasible());
}

TEST(StaticSchedule, UnscheduledJobReported) {
  const TaskGraph tg = two_job_chain();
  StaticSchedule s(tg.job_count(), 1);
  s.place(JobId(0), ProcessorId(0), Time::ms(0));
  const auto report = s.check_feasibility(tg);
  ASSERT_FALSE(report.feasible());
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kUnscheduled);
  EXPECT_NE(report.to_string(tg).find("unscheduled"), std::string::npos);
}

TEST(StaticSchedule, PerProcessorOrderSortsByStart) {
  TaskGraph tg(Duration::ms(100));
  tg.add_job(make_job("A", 0, 100, 10));
  tg.add_job(make_job("B", 0, 100, 10));
  tg.add_job(make_job("C", 0, 100, 10));
  StaticSchedule s(tg.job_count(), 2);
  s.place(JobId(0), ProcessorId(0), Time::ms(20));
  s.place(JobId(1), ProcessorId(0), Time::ms(0));
  s.place(JobId(2), ProcessorId(1), Time::ms(0));
  const auto order = s.per_processor_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], (std::vector<JobId>{JobId(1), JobId(0)}));
  EXPECT_EQ(order[1], std::vector<JobId>{JobId(2)});
}

TEST(StaticSchedule, BusyTimePerProcessor) {
  TaskGraph tg(Duration::ms(100));
  tg.add_job(make_job("A", 0, 100, 10));
  tg.add_job(make_job("B", 0, 100, 30));
  StaticSchedule s(tg.job_count(), 2);
  s.place(JobId(0), ProcessorId(0), Time::ms(0));
  s.place(JobId(1), ProcessorId(1), Time::ms(0));
  const auto busy = s.busy_time(tg);
  EXPECT_EQ(busy[0], Duration::ms(10));
  EXPECT_EQ(busy[1], Duration::ms(30));
}

TEST(StaticSchedule, RangeChecks) {
  StaticSchedule s(2, 1);
  EXPECT_THROW(s.place(JobId(5), ProcessorId(0), Time::ms(0)), std::invalid_argument);
  EXPECT_THROW(s.place(JobId(0), ProcessorId(3), Time::ms(0)), std::invalid_argument);
  EXPECT_THROW((void)s.placement(JobId(0)), std::logic_error);
  EXPECT_THROW(StaticSchedule(2, 0), std::invalid_argument);
}

TEST(StaticSchedule, LazyDetailTextUnchanged) {
  // Violation messages are built on demand now; the rendered report must
  // read exactly as the eager strings did.
  const TaskGraph tg = two_job_chain();
  StaticSchedule s(tg.job_count(), 1);
  s.place(JobId(0), ProcessorId(0), Time::ms(45));  // ends 55 > D=50
  s.place(JobId(1), ProcessorId(0), Time::ms(40));  // overlap + precedence
  const auto report = s.check_feasibility(tg);
  const std::string text = report.to_string(tg);
  EXPECT_NE(text.find("ends 55 > D=50"), std::string::npos) << text;
  EXPECT_NE(text.find("pred ends 55 > succ starts 40"), std::string::npos) << text;
  EXPECT_NE(text.find("overlap on processor 0"), std::string::npos) << text;

  TaskGraph late = two_job_chain();
  late.job(JobId(1)).arrival = Time::ms(50);
  const std::string arrival_text = s.check_feasibility(late).to_string(late);
  EXPECT_NE(arrival_text.find("starts 40 < A=50"), std::string::npos) << arrival_text;
}

TEST(StaticSchedule, CountsMatchFullReport) {
  // The counts-only fast mode must tally exactly what check_feasibility
  // reports, per kind — including an unplaced job and a mutex overlap.
  TaskGraph tg(Duration::ms(100));
  tg.add_job(make_job("A", 10, 50, 10));
  tg.add_job(make_job("B", 0, 30, 20));
  tg.add_job(make_job("C", 0, 100, 10));
  tg.add_job(make_job("D", 0, 100, 10));
  tg.add_edge(JobId(0), JobId(1));
  StaticSchedule s(tg.job_count(), 2);
  s.place(JobId(0), ProcessorId(0), Time::ms(0));   // arrival violation (10 > 0)
  s.place(JobId(1), ProcessorId(0), Time::ms(5));   // mutex + precedence + deadline
  s.place(JobId(2), ProcessorId(1), Time::ms(0));
  // D left unplaced.
  const auto report = s.check_feasibility(tg);
  const ViolationCounts counts = s.count_violations(tg);
  std::size_t unscheduled = 0, arrival = 0, deadline = 0, precedence = 0, mutex = 0;
  for (const Violation& v : report.violations) {
    switch (v.kind) {
      case ViolationKind::kUnscheduled: ++unscheduled; break;
      case ViolationKind::kArrival: ++arrival; break;
      case ViolationKind::kDeadline: ++deadline; break;
      case ViolationKind::kPrecedence: ++precedence; break;
      case ViolationKind::kMutex: ++mutex; break;
    }
  }
  EXPECT_EQ(counts.unscheduled, unscheduled);
  EXPECT_EQ(counts.arrival, arrival);
  EXPECT_EQ(counts.deadline, deadline);
  EXPECT_EQ(counts.precedence, precedence);
  EXPECT_EQ(counts.mutex, mutex);
  EXPECT_EQ(counts.total(), report.violations.size());
  EXPECT_EQ(counts.feasible(), report.feasible());
}

TEST(StaticSchedule, CountsFeasibleOnCleanSchedule) {
  const TaskGraph tg = two_job_chain();
  StaticSchedule s(tg.job_count(), 1);
  s.place(JobId(0), ProcessorId(0), Time::ms(0));
  s.place(JobId(1), ProcessorId(0), Time::ms(10));
  const ViolationCounts counts = s.count_violations(tg);
  EXPECT_TRUE(counts.feasible());
  EXPECT_EQ(counts.total(), 0u);
}

TEST(StaticSchedule, GanttRendersJobNames) {
  const TaskGraph tg = two_job_chain();
  StaticSchedule s(tg.job_count(), 1);
  s.place(JobId(0), ProcessorId(0), Time::ms(0));
  s.place(JobId(1), ProcessorId(0), Time::ms(10));
  const std::string gantt = s.to_gantt(tg, 80);
  EXPECT_NE(gantt.find("M1"), std::string::npos);
  EXPECT_NE(gantt.find('A'), std::string::npos);
  EXPECT_NE(gantt.find("20 ms"), std::string::npos);
}

}  // namespace
}  // namespace fppn
