// SP optimization by local search: never worse than the plain heuristics,
// deterministic per seed, and able to fix heuristic-adversarial instances.
#include "sched/local_search.hpp"

#include <gtest/gtest.h>

#include "apps/fig1.hpp"
#include "apps/fms.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

Job make_job(const std::string& name, std::int64_t a, std::int64_t d, std::int64_t c,
             std::size_t process) {
  Job j;
  j.process = ProcessId{process};
  j.arrival = Time::ms(a);
  j.deadline = Time::ms(d);
  j.wcet = Duration::ms(c);
  j.name = name;
  return j;
}

TEST(LocalSearch, FeasibleInstanceSolved) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  LocalSearchOptions opts;
  opts.processors = 2;
  const LocalSearchResult result = optimize_priority(derived.graph, opts);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.violations, 0u);
  EXPECT_LE(result.makespan, Time::ms(200));
  // The priority it reports must reproduce the schedule it reports.
  const StaticSchedule replay =
      list_schedule(derived.graph, result.priority, opts.processors);
  EXPECT_EQ(replay.makespan(derived.graph), result.makespan);
}

TEST(LocalSearch, NeverWorseThanHeuristics) {
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  LocalSearchOptions opts;
  opts.processors = 1;
  opts.max_iterations = 50;  // tiny budget: must still match the best start
  opts.restarts = 0;
  const LocalSearchResult result = optimize_priority(derived.graph, opts);
  for (const PriorityHeuristic h : all_heuristics()) {
    const StaticSchedule s = list_schedule(derived.graph, h, 1);
    std::size_t violations = 0;
    for (const Violation& v : s.check_feasibility(derived.graph).violations) {
      violations += v.kind == ViolationKind::kDeadline ? 1 : 0;
    }
    EXPECT_LE(result.violations, violations) << to_string(h);
  }
}

TEST(LocalSearch, DeterministicPerSeed) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  LocalSearchOptions opts;
  opts.processors = 2;
  opts.seed = 77;
  const LocalSearchResult a = optimize_priority(derived.graph, opts);
  const LocalSearchResult b = optimize_priority(derived.graph, opts);
  EXPECT_EQ(a.priority, b.priority);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.violations, b.violations);
}

TEST(LocalSearch, FixesHeuristicAdversarialInstance) {
  // Two processors. Process 0: J0 (0,100,50). Long chain behind J1 on the
  // same deadline pushes heuristics to co-schedule badly: craft jobs where
  // arrival-order and DM tie-breaks produce a deadline miss, and check the
  // search reaches zero violations (an exhaustive argument shows one
  // exists: {J0 || J1; J2 after J1} fits).
  TaskGraph tg(Duration::ms(200));
  const JobId j0 = tg.add_job(make_job("J0", 0, 100, 50, 0));
  const JobId j1 = tg.add_job(make_job("J1", 0, 60, 50, 1));
  const JobId j2 = tg.add_job(make_job("J2", 0, 200, 90, 2));
  const JobId j3 = tg.add_job(make_job("J3", 0, 160, 50, 3));
  tg.add_edge(j1, j3);
  (void)j0;
  (void)j2;
  LocalSearchOptions opts;
  opts.processors = 2;
  opts.max_iterations = 3000;
  opts.restarts = 4;
  const LocalSearchResult result = optimize_priority(tg, opts);
  EXPECT_TRUE(result.feasible) << result.violations << " violations left";
}

TEST(LocalSearch, StartPrioritiesNeverMakeTheResultWorse) {
  // The warm-start hook's core guarantee: the search seeds from the best
  // of heuristics ∪ start_priorities and only accepts improvements, so
  // supplying start points — even deliberately bad ones — can never
  // produce a worse schedule than the plain heuristic start.
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  LocalSearchOptions opts;
  opts.processors = 2;
  opts.max_iterations = 100;
  opts.restarts = 0;
  const LocalSearchResult plain = optimize_priority(derived.graph, opts);

  // A worst-case start: reverse job-index order.
  std::vector<JobId> reversed;
  for (std::size_t i = derived.graph.job_count(); i > 0; --i) {
    reversed.push_back(JobId(i - 1));
  }
  opts.start_priorities = {reversed};
  const LocalSearchResult warm = optimize_priority(derived.graph, opts);
  EXPECT_LE(warm.violations, plain.violations);
  if (warm.violations == plain.violations) {
    EXPECT_LE(warm.makespan, plain.makespan);
  }
}

TEST(LocalSearch, EqualScoringStartPriorityKeepsTheHeuristicTrajectory) {
  // A start point that merely ties the best heuristic must not displace
  // it: the search then walks the exact cold trajectory (same RNG), so
  // the warm result is bit-identical to the plain one — the "match" half
  // of the warm-start match-or-beat contract.
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  LocalSearchOptions opts;
  opts.processors = 2;
  opts.seed = 5;
  const LocalSearchResult plain = optimize_priority(derived.graph, opts);

  opts.start_priorities = {plain.priority};  // scores exactly like the incumbent
  const LocalSearchResult warm = optimize_priority(derived.graph, opts);
  EXPECT_EQ(warm.priority, plain.priority);
  EXPECT_EQ(warm.makespan, plain.makespan);
  EXPECT_EQ(warm.violations, plain.violations);
}

TEST(LocalSearch, StrictlyBetterStartPriorityIsAdopted) {
  // A classic list-scheduling anomaly: independent jobs {4,4,3,3,2} on 2
  // processors. Every heuristic orders them by index or by descending
  // WCET (equal deadlines, no edges), which greedy-packs to makespan 9;
  // the order {4,3,3,4,2} packs to the optimal 8. With a zero move
  // budget, only the start-priority seeding can reach 8 — proving a
  // strictly better start point displaces the heuristic seed.
  TaskGraph tg(Duration::ms(100));
  const JobId a = tg.add_job(make_job("A", 0, 100, 4, 0));
  const JobId b = tg.add_job(make_job("B", 0, 100, 4, 1));
  const JobId c = tg.add_job(make_job("C", 0, 100, 3, 2));
  const JobId d = tg.add_job(make_job("D", 0, 100, 3, 3));
  const JobId e = tg.add_job(make_job("E", 0, 100, 2, 4));
  LocalSearchOptions opts;
  opts.processors = 2;
  opts.max_iterations = 0;
  opts.restarts = 0;
  const LocalSearchResult plain = optimize_priority(tg, opts);
  ASSERT_GT(plain.makespan, Time::ms(8)) << "heuristics already pack optimally";

  opts.start_priorities = {{a, c, d, b, e}};
  const LocalSearchResult warm = optimize_priority(tg, opts);
  EXPECT_EQ(warm.makespan, Time::ms(8));
  EXPECT_EQ(warm.start_priority_index, 0);
}

TEST(LocalSearch, MalformedStartPriorityThrows) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  LocalSearchOptions opts;
  opts.processors = 2;
  opts.start_priorities = {{JobId(0)}};  // not a permutation of all jobs
  EXPECT_THROW((void)optimize_priority(derived.graph, opts), std::invalid_argument);
}

TEST(LocalSearch, DefaultStaleLimitKeepsHistoricalBehavior) {
  // stale_limit replaces a hard-coded 200; an explicit 200 must walk the
  // bit-identical trajectory of the default.
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  LocalSearchOptions opts;
  opts.processors = 2;
  opts.seed = 13;
  const LocalSearchResult implicit = optimize_priority(derived.graph, opts);
  opts.stale_limit = 200;
  const LocalSearchResult explicit_200 = optimize_priority(derived.graph, opts);
  EXPECT_EQ(implicit.priority, explicit_200.priority);
  EXPECT_EQ(implicit.makespan, explicit_200.makespan);
  EXPECT_EQ(implicit.iterations_used, explicit_200.iterations_used);
}

TEST(LocalSearch, TighterStaleLimitCutsIterationsNotCorrectness) {
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  LocalSearchOptions opts;
  opts.processors = 1;
  opts.max_iterations = 2000;
  opts.restarts = 0;
  const LocalSearchResult roomy = optimize_priority(derived.graph, opts);
  opts.stale_limit = 5;
  const LocalSearchResult tight = optimize_priority(derived.graph, opts);
  EXPECT_LE(tight.iterations_used, roomy.iterations_used);
  // The search still starts from the best heuristic, so a tight limit
  // can bound improvement, never correctness.
  const StaticSchedule replay =
      list_schedule(derived.graph, tight.priority, opts.processors);
  EXPECT_EQ(replay.makespan(derived.graph), tight.makespan);
}

TEST(LocalSearch, TrivialGraphs) {
  TaskGraph empty;
  const LocalSearchResult r0 = optimize_priority(empty, {});
  EXPECT_TRUE(r0.feasible);
  TaskGraph one;
  one.add_job(make_job("solo", 0, 100, 10, 0));
  const LocalSearchResult r1 = optimize_priority(one, {});
  EXPECT_TRUE(r1.feasible);
  EXPECT_EQ(r1.makespan, Time::ms(10));
}

}  // namespace
}  // namespace fppn
