// VM-vs-thread Runtime parity on the fig1 network: both backends, driven
// through the uniform runtime::Runtime interface with the same schedule,
// inputs and sporadic scripts, must produce functionally equal execution
// histories (Prop. 2.1 + Prop. 4.1), equal to the zero-delay reference.
#include <gtest/gtest.h>

#include "apps/fig1.hpp"
#include "runtime/runtime.hpp"
#include "sched/parallel_search.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

struct Fixture {
  apps::Fig1App app = apps::build_fig1();
  DerivedTaskGraph derived = derive_task_graph(app.net, app.fig3_wcets());
  InputScripts inputs =
      app.make_inputs({3.5, 1.5, 4.0, 1.0, 5.5, 9.0, 2.5, 6.0}, {1.5, 2.5, 3.5, 4.5});
  std::map<ProcessId, SporadicScript> sporadics;
  StaticSchedule schedule;

  explicit Fixture(std::int64_t frames) {
    // Both invocations early enough that every run horizon in this file
    // (frames >= 1) serves them; a near-horizon invocation would be served
    // by the static-order runs one frame later than the zero-delay
    // reference records it.
    sporadics.emplace(app.coef_b,
                      SporadicScript({Time::ms(50), Time::ms(130)}, 2,
                                     Duration::ms(700)));
    sched::ParallelSearchOptions opts;
    opts.processors = 2;
    opts.seeds_per_strategy = 1;
    schedule = sched::parallel_search(derived.graph, opts).best.schedule;
    (void)frames;
  }
};

TEST(RuntimeParity, VmAndThreadsProduceFunctionallyEqualHistories) {
  const std::int64_t frames = 3;
  Fixture f(frames);

  runtime::RunOptions vm_opts;
  vm_opts.frames = frames;
  const RunResult vm = runtime::make_runtime("vm")->run(
      f.app.net, f.derived, f.schedule, vm_opts, f.inputs, f.sporadics);

  runtime::RunOptions th_opts;
  th_opts.frames = frames;
  th_opts.micros_per_model_ms = 100.0;  // 10x real time: slack for sanitizer/CI load
  const RunResult th = runtime::make_runtime("threads")->run(
      f.app.net, f.derived, f.schedule, th_opts, f.inputs, f.sporadics);

  EXPECT_EQ(vm.jobs_executed, th.jobs_executed);
  EXPECT_EQ(vm.false_skips, th.false_skips);
  EXPECT_TRUE(vm.histories.functionally_equal(th.histories))
      << th.histories.diff(vm.histories, f.app.net);
}

TEST(RuntimeParity, BothBackendsMatchZeroDelayReference) {
  const std::int64_t frames = 2;
  Fixture f(frames);
  const ZeroDelayResult ref = zero_delay_reference(f.app.net, f.derived.hyperperiod,
                                                   frames, f.inputs, f.sporadics);
  for (const std::string& name : runtime::RuntimeRegistry::global().names()) {
    runtime::RunOptions opts;
    opts.frames = frames;
    opts.micros_per_model_ms = 100.0;
    const RunResult run = runtime::make_runtime(name)->run(
        f.app.net, f.derived, f.schedule, opts, f.inputs, f.sporadics);
    EXPECT_TRUE(run.histories.functionally_equal(ref.histories))
        << name << ":\n" << run.histories.diff(ref.histories, f.app.net);
  }
}

TEST(RuntimeParity, BackendSpecificOptionsAreIgnoredByTheOther) {
  // The shared RunOptions carries the union of backend knobs; a backend
  // must ignore fields it does not model rather than reject them.
  const std::int64_t frames = 1;
  Fixture f(frames);
  runtime::RunOptions opts;
  opts.frames = frames;
  opts.overhead = OverheadModel::mppa_measured();  // vm-only knob
  opts.micros_per_model_ms = 100.0;                 // threads-only knob
  const RunResult vm = runtime::make_runtime("vm")->run(f.app.net, f.derived,
                                                        f.schedule, opts, f.inputs,
                                                        f.sporadics);
  const RunResult th = runtime::make_runtime("threads")->run(
      f.app.net, f.derived, f.schedule, opts, f.inputs, f.sporadics);
  EXPECT_TRUE(vm.histories.functionally_equal(th.histories));
}

TEST(RuntimeParity, IncompleteScheduleRejectedByBothBackends) {
  Fixture f(1);
  StaticSchedule empty(f.derived.graph.job_count(), 2);  // nothing placed
  for (const std::string& name : runtime::RuntimeRegistry::global().names()) {
    runtime::RunOptions opts;
    EXPECT_THROW((void)runtime::make_runtime(name)->run(f.app.net, f.derived, empty,
                                                        opts, f.inputs, f.sporadics),
                 std::invalid_argument)
        << name;
  }
}

}  // namespace
}  // namespace fppn
