// Task-graph fingerprints: sensitivity to every observable field,
// construction-order independence, stability, and absence of collisions
// over families of near-identical graphs.
#include "taskgraph/fingerprint.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "apps/fig1.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

TaskGraph small_graph() {
  TaskGraph tg(Duration::ms(200));
  for (int i = 0; i < 4; ++i) {
    Job j;
    j.process = ProcessId{static_cast<std::size_t>(i)};
    j.k = 1;
    j.arrival = Time::ms(0);
    j.deadline = Time::ms(200);
    j.wcet = Duration::ms(25);
    j.name = "J" + std::to_string(i);
    tg.add_job(j);
  }
  tg.add_edge(JobId(0), JobId(1));
  tg.add_edge(JobId(1), JobId(2));
  tg.add_edge(JobId(0), JobId(3));
  return tg;
}

TEST(Fingerprint, StableAcrossCalls) {
  const TaskGraph tg = small_graph();
  EXPECT_EQ(fingerprint(tg), fingerprint(tg));
  EXPECT_EQ(fingerprint(small_graph()), fingerprint(tg));
}

TEST(Fingerprint, DerivedGraphIsStable) {
  const auto app = apps::build_fig1();
  const auto a = derive_task_graph(app.net, app.fig3_wcets());
  const auto b = derive_task_graph(app.net, app.fig3_wcets());
  EXPECT_EQ(fingerprint(a.graph), fingerprint(b.graph));
}

TEST(Fingerprint, SensitiveToEveryJobField) {
  const std::uint64_t base = fingerprint(small_graph());

  {
    TaskGraph tg = small_graph();
    tg.job(JobId(2)).wcet = Duration::ms(26);
    EXPECT_NE(fingerprint(tg), base) << "wcet change not detected";
  }
  {
    TaskGraph tg = small_graph();
    tg.job(JobId(2)).deadline = Time::ms(199);
    EXPECT_NE(fingerprint(tg), base) << "deadline change not detected";
  }
  {
    TaskGraph tg = small_graph();
    tg.job(JobId(2)).arrival = Time::ms(1);
    EXPECT_NE(fingerprint(tg), base) << "arrival change not detected";
  }
  {
    TaskGraph tg = small_graph();
    tg.job(JobId(2)).process = ProcessId{9};
    EXPECT_NE(fingerprint(tg), base) << "process change not detected";
  }
  {
    TaskGraph tg = small_graph();
    tg.job(JobId(2)).k = 2;
    EXPECT_NE(fingerprint(tg), base) << "invocation index change not detected";
  }
  {
    TaskGraph tg = small_graph();
    tg.job(JobId(2)).is_server = true;
    EXPECT_NE(fingerprint(tg), base) << "server flag change not detected";
  }
  {
    TaskGraph tg = small_graph();
    tg.job(JobId(2)).subset = 1;
    EXPECT_NE(fingerprint(tg), base) << "subset change not detected";
  }
  {
    TaskGraph tg = small_graph();
    tg.job(JobId(2)).name = "renamed";
    EXPECT_NE(fingerprint(tg), base) << "name change not detected";
  }
  {
    TaskGraph tg = small_graph();
    tg.set_hyperperiod(Duration::ms(400));
    EXPECT_NE(fingerprint(tg), base) << "hyperperiod change not detected";
  }
}

TEST(Fingerprint, SensitiveToEdges) {
  const std::uint64_t base = fingerprint(small_graph());
  {
    TaskGraph tg = small_graph();
    tg.add_edge(JobId(2), JobId(3));
    EXPECT_NE(fingerprint(tg), base) << "added edge not detected";
  }
  {
    TaskGraph tg = small_graph();
    tg.remove_edge(JobId(0), JobId(3));
    EXPECT_NE(fingerprint(tg), base) << "removed edge not detected";
  }
  {
    // Same endpoints reversed: a genuinely different precedence relation.
    TaskGraph tg = small_graph();
    tg.remove_edge(JobId(0), JobId(3));
    tg.add_edge(JobId(3), JobId(0));
    EXPECT_NE(fingerprint(tg), base) << "edge direction not detected";
  }
}

TEST(Fingerprint, EdgeInsertionOrderIrrelevant) {
  // The same graph built with edges added in a different order must
  // fingerprint identically (the "order-independent" contract).
  TaskGraph a = small_graph();
  TaskGraph b(Duration::ms(200));
  for (int i = 0; i < 4; ++i) {
    b.add_job(a.job(JobId(static_cast<std::size_t>(i))));
  }
  b.add_edge(JobId(0), JobId(3));
  b.add_edge(JobId(1), JobId(2));
  b.add_edge(JobId(0), JobId(1));
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, JobPermutationIsADifferentGraph) {
  // Schedules address jobs by index, so swapping two distinguishable jobs
  // must change the fingerprint even though the job *set* is equal.
  TaskGraph a(Duration::ms(100));
  TaskGraph b(Duration::ms(100));
  Job j0, j1;
  j0.process = ProcessId{0};
  j0.arrival = Time::ms(0);
  j0.deadline = Time::ms(100);
  j0.wcet = Duration::ms(10);
  j0.name = "a";
  j1 = j0;
  j1.process = ProcessId{1};
  j1.name = "b";
  a.add_job(j0);
  a.add_job(j1);
  b.add_job(j1);
  b.add_job(j0);
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, NoCollisionsOverRandomFamily) {
  // 512 random perturbations of one base graph — every WCET bump yields a
  // distinct graph, so all fingerprints must be pairwise distinct.
  std::set<std::uint64_t> seen;
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 512; ++trial) {
    TaskGraph tg = small_graph();
    // Unique WCET vector per trial: trial index encoded in milliseconds.
    tg.job(JobId(0)).wcet = Duration::ms(25 + trial);
    tg.job(JobId(1)).wcet =
        Duration::ratio_ms(1 + static_cast<std::int64_t>(rng() % 1000), 7);
    const bool fresh = seen.insert(fingerprint(tg)).second;
    EXPECT_TRUE(fresh) << "collision at trial " << trial;
  }
}

TEST(Fingerprint, HexRoundTrip) {
  for (const std::uint64_t fp :
       {0ULL, 1ULL, 0xdeadbeefULL, 0xffffffffffffffffULL, 0x0123456789abcdefULL}) {
    const std::string hex = fingerprint_hex(fp);
    EXPECT_EQ(hex.size(), 16u);
    EXPECT_EQ(parse_fingerprint_hex(hex), fp);
  }
  EXPECT_THROW((void)parse_fingerprint_hex("123"), std::invalid_argument);
  EXPECT_THROW((void)parse_fingerprint_hex("zzzzzzzzzzzzzzzz"), std::invalid_argument);
  EXPECT_THROW((void)parse_fingerprint_hex("0123456789ABCDEF"), std::invalid_argument);
}

}  // namespace
}  // namespace fppn
