// Reactor deadline tests: the three per-connection timers in isolation
// against a real socket peer misbehaving in exactly the way each timer
// exists for — a connected-but-silent client (idle), a slow-loris
// trickling one byte at a time so the request never completes (request),
// and a reader that takes a huge response but stops draining it (write).
// Each stalled peer must be cut within 2x its configured deadline while
// a healthy client on the same reactor is answered normally, and a
// well-behaved connection must finish with zero timeouts counted.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "net/listener.hpp"
#include "net/reactor.hpp"

namespace {

namespace fs = std::filesystem;
using fppn::net::Endpoint;
using fppn::net::Listener;
using fppn::net::Reactor;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("fppn_net_deadline_test_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string read_to_eof(int fd) {
  std::string data;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      data.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;
  }
  return data;
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string roundtrip(const Endpoint& endpoint, const std::string& request) {
  const int fd = fppn::net::connect_endpoint(endpoint);
  if (fd < 0) {
    return "<connect failed: " + std::string(std::strerror(errno)) + ">";
  }
  write_all(fd, request);
  ::shutdown(fd, SHUT_WR);
  const std::string response = read_to_eof(fd);
  ::close(fd);
  return response;
}

/// Echo reactor with deadlines armed, recording every timeout event.
class DeadlineReactor {
 public:
  explicit DeadlineReactor(Reactor::Options options, std::string response = "") {
    Reactor::Events events;
    events.on_request = [this, response](std::uint64_t conn, std::string request) {
      reactor_->submit_response(conn,
                                response.empty() ? "echo:" + request : response);
    };
    events.on_timeout = [this](std::uint64_t, Reactor::TimeoutKind kind) {
      switch (kind) {
        case Reactor::TimeoutKind::kIdle:
          ++idle_;
          break;
        case Reactor::TimeoutKind::kRequest:
          ++request_;
          break;
        case Reactor::TimeoutKind::kWrite:
          ++write_;
          break;
      }
    };
    reactor_ = std::make_unique<Reactor>(events, options);
  }

  void add(Listener listener) { reactor_->add_listener(std::move(listener)); }
  void start() {
    thread_ = std::thread([this] { reactor_->run(); });
  }
  void stop_and_join() {
    reactor_->request_stop();
    thread_.join();
  }
  [[nodiscard]] Reactor& reactor() { return *reactor_; }
  [[nodiscard]] int idle_timeouts() const { return idle_.load(); }
  [[nodiscard]] int request_timeouts() const { return request_.load(); }
  [[nodiscard]] int write_timeouts() const { return write_.load(); }

 private:
  std::unique_ptr<Reactor> reactor_;
  std::thread thread_;
  std::atomic<int> idle_{0};
  std::atomic<int> request_{0};
  std::atomic<int> write_{0};
};

TEST(NetDeadline, IdleConnectionIsClosedWithinTwiceTheDeadline) {
  const TempDir dir("idle");
  const std::string path = dir.path() + "/r.sock";
  constexpr int kDeadlineMs = 200;
  Reactor::Options options;
  options.idle_timeout_ms = kDeadlineMs;
  DeadlineReactor echo(options);
  echo.add(Listener::listen(Endpoint::unix_socket(path)));
  echo.start();

  // Connect and stay silent: the reactor must hang up on its own — a
  // blocking read on our side returning EOF is the close observed from
  // the peer's seat.
  const int fd = fppn::net::connect_endpoint(Endpoint::unix_socket(path));
  ASSERT_GE(fd, 0);
  const Clock::time_point start = Clock::now();
  EXPECT_EQ(read_to_eof(fd), "");
  const double elapsed = ms_since(start);
  ::close(fd);
  EXPECT_LE(elapsed, 2.0 * kDeadlineMs) << elapsed;
  EXPECT_GE(elapsed, 0.5 * kDeadlineMs) << elapsed;  // not cut prematurely

  // The deadline is idle-only: a prompt request still round-trips.
  EXPECT_EQ(roundtrip(Endpoint::unix_socket(path), "hi"), "echo:hi");
  echo.stop_and_join();
  EXPECT_EQ(echo.idle_timeouts(), 1);
  EXPECT_EQ(echo.reactor().counters().idle_timeouts, 1u);
  EXPECT_EQ(echo.reactor().counters().requests, 1u);
}

TEST(NetDeadline, SlowLorisDripNeverExtendsTheRequestDeadline) {
  const TempDir dir("loris");
  const std::string path = dir.path() + "/r.sock";
  constexpr int kDeadlineMs = 250;
  std::signal(SIGPIPE, SIG_IGN);
  Reactor::Options options;
  options.request_timeout_ms = kDeadlineMs;
  DeadlineReactor echo(options);
  echo.add(Listener::listen(Endpoint::unix_socket(path)));
  echo.start();

  // Drip one byte every 25 ms, never finishing the request. If each byte
  // re-armed the deadline (the classic slow-loris hole), this connection
  // would live forever; the window runs first byte -> complete request,
  // so it must be cut within 2x regardless of the drip.
  const int fd = fppn::net::connect_endpoint(Endpoint::unix_socket(path));
  ASSERT_GE(fd, 0);
  const Clock::time_point start = Clock::now();
  bool closed = false;
  while (ms_since(start) < 4.0 * kDeadlineMs) {
    const ssize_t n = ::write(fd, "x", 1);
    if (n < 0 && errno != EINTR && errno != EAGAIN) {
      closed = true;  // EPIPE/ECONNRESET: the reactor hung up
      break;
    }
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 25) > 0) {
      char buf[16];
      if (::read(fd, buf, sizeof(buf)) == 0) {
        closed = true;  // EOF: ditto
        break;
      }
    }
  }
  const double elapsed = ms_since(start);
  ::close(fd);
  EXPECT_TRUE(closed);
  EXPECT_LE(elapsed, 2.0 * kDeadlineMs) << elapsed;

  // A whole request well inside the window is unaffected.
  EXPECT_EQ(roundtrip(Endpoint::unix_socket(path), "quick"), "echo:quick");
  echo.stop_and_join();
  EXPECT_EQ(echo.request_timeouts(), 1);
  EXPECT_EQ(echo.reactor().counters().request_timeouts, 1u);
  EXPECT_EQ(echo.reactor().counters().requests, 1u);  // loris never dispatched
}

TEST(NetDeadline, StalledReaderIsCutByTheWriteDeadline) {
  const TempDir dir("stall");
  const std::string path = dir.path() + "/r.sock";
  constexpr int kDeadlineMs = 200;
  std::signal(SIGPIPE, SIG_IGN);
  Reactor::Options options;
  options.write_timeout_ms = kDeadlineMs;
  // A response far beyond any socket buffer: flushing it *requires* the
  // peer to keep draining, which this peer will not do.
  const std::string huge(2 * 1024 * 1024, 'z');
  DeadlineReactor echo(options, huge);
  echo.add(Listener::listen(Endpoint::unix_socket(path)));
  echo.start();

  const int fd = fppn::net::connect_endpoint(Endpoint::unix_socket(path));
  ASSERT_GE(fd, 0);
  write_all(fd, "go");
  ::shutdown(fd, SHUT_WR);
  // Read a first chunk (so the write began), then stop draining entirely.
  char buf[4096];
  ssize_t n;
  do {
    n = ::read(fd, buf, sizeof(buf));
  } while (n < 0 && errno == EINTR);
  ASSERT_GT(n, 0);
  const Clock::time_point stalled_at = Clock::now();
  for (int i = 0; i < 200 && echo.write_timeouts() == 0; ++i) {
    ::usleep(10 * 1000);
  }
  const double elapsed = ms_since(stalled_at);
  EXPECT_EQ(echo.write_timeouts(), 1);
  EXPECT_LE(elapsed, 2.0 * kDeadlineMs) << elapsed;
  ::close(fd);

  // The write deadline is progress-based: a slow-but-draining reader of
  // the same huge response survives (every successful write re-arms it).
  const std::string drained = roundtrip(Endpoint::unix_socket(path), "again");
  EXPECT_EQ(drained, huge);
  echo.stop_and_join();
  EXPECT_EQ(echo.reactor().counters().write_timeouts, 1u);
}

TEST(NetDeadline, WellBehavedTrafficCountsNoTimeouts) {
  const TempDir dir("clean");
  const std::string path = dir.path() + "/r.sock";
  Reactor::Options options;
  options.idle_timeout_ms = 500;
  options.request_timeout_ms = 500;
  options.write_timeout_ms = 500;
  DeadlineReactor echo(options);
  echo.add(Listener::listen(Endpoint::unix_socket(path)));
  echo.start();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(roundtrip(Endpoint::unix_socket(path), std::to_string(i)),
              "echo:" + std::to_string(i));
  }
  echo.stop_and_join();
  EXPECT_EQ(echo.reactor().counters().idle_timeouts, 0u);
  EXPECT_EQ(echo.reactor().counters().request_timeouts, 0u);
  EXPECT_EQ(echo.reactor().counters().write_timeouts, 0u);
  EXPECT_EQ(echo.reactor().counters().requests, 8u);
}

}  // namespace
