#include "fppn/network.hpp"

#include <gtest/gtest.h>

namespace fppn {
namespace {

NetworkBuilder two_process_builder(ProcessId* a, ProcessId* b) {
  NetworkBuilder builder;
  *a = builder.periodic("A", Duration::ms(100), Duration::ms(100), no_op_behavior());
  *b = builder.periodic("B", Duration::ms(200), Duration::ms(200), no_op_behavior());
  return builder;
}

TEST(NetworkBuilder, RejectsDuplicateProcessName) {
  NetworkBuilder b;
  b.periodic("A", Duration::ms(100), Duration::ms(100), no_op_behavior());
  EXPECT_THROW(
      b.periodic("A", Duration::ms(100), Duration::ms(100), no_op_behavior()),
      std::invalid_argument);
}

TEST(NetworkBuilder, RejectsEmptyNameAndNullBehavior) {
  NetworkBuilder b;
  EXPECT_THROW(b.periodic("", Duration::ms(1), Duration::ms(1), no_op_behavior()),
               std::invalid_argument);
  EXPECT_THROW(b.periodic("X", Duration::ms(1), Duration::ms(1), BehaviorFactory{}),
               std::invalid_argument);
}

TEST(NetworkBuilder, RejectsChannelWithoutPriority) {
  // Def. 2.1: FP must relate every channel-sharing pair.
  ProcessId a, b;
  NetworkBuilder builder = two_process_builder(&a, &b);
  builder.fifo("c", a, b);
  EXPECT_THROW(std::move(builder).build(), std::invalid_argument);
}

TEST(NetworkBuilder, RejectsCyclicPriority) {
  ProcessId a, b;
  NetworkBuilder builder = two_process_builder(&a, &b);
  builder.priority(a, b);
  builder.priority(b, a);
  EXPECT_THROW(std::move(builder).build(), std::invalid_argument);
}

TEST(NetworkBuilder, RejectsSelfChannelAndSelfPriority) {
  NetworkBuilder b;
  const ProcessId a =
      b.periodic("A", Duration::ms(100), Duration::ms(100), no_op_behavior());
  EXPECT_THROW(b.fifo("c", a, a), std::invalid_argument);
  EXPECT_THROW(b.priority(a, a), std::invalid_argument);
}

TEST(NetworkBuilder, RejectsDuplicateChannelName) {
  ProcessId a, b;
  NetworkBuilder builder = two_process_builder(&a, &b);
  builder.fifo("c", a, b);
  EXPECT_THROW(builder.fifo("c", b, a), std::invalid_argument);
}

TEST(Network, ChannelBookkeeping) {
  ProcessId a, b;
  NetworkBuilder builder = two_process_builder(&a, &b);
  const ChannelId c = builder.blackboard("c", a, b);
  const ChannelId in = builder.external_input("in", a);
  const ChannelId out = builder.external_output("out", b);
  builder.priority(a, b);
  const Network net = std::move(builder).build();

  EXPECT_EQ(net.channel(c).kind, ChannelKind::kBlackboard);
  EXPECT_EQ(net.channel(c).scope, ChannelScope::kInternal);
  EXPECT_EQ(net.channel(in).scope, ChannelScope::kExternalInput);
  EXPECT_EQ(net.channel(out).scope, ChannelScope::kExternalOutput);
  EXPECT_EQ(net.external_inputs(), std::vector<ChannelId>{in});
  EXPECT_EQ(net.external_outputs(), std::vector<ChannelId>{out});
  EXPECT_EQ(net.internal_channels_of(a), std::vector<ChannelId>{c});
  EXPECT_EQ(net.process(a).writes.size(), 1u);
  EXPECT_EQ(net.process(b).reads.size(), 1u);
}

TEST(Network, PriorityQueries) {
  ProcessId a, b;
  NetworkBuilder builder = two_process_builder(&a, &b);
  builder.priority(a, b);
  const Network net = std::move(builder).build();
  EXPECT_TRUE(net.has_priority(a, b));
  EXPECT_FALSE(net.has_priority(b, a));
  EXPECT_TRUE(net.priority_related(a, b));
  EXPECT_TRUE(net.priority_related(b, a));
}

TEST(Network, FindByName) {
  ProcessId a, b;
  NetworkBuilder builder = two_process_builder(&a, &b);
  const Network net = std::move(builder).build();
  EXPECT_EQ(net.find_process("A"), a);
  EXPECT_EQ(net.find_process("nope"), std::nullopt);
}

TEST(Network, UserOfSporadic) {
  NetworkBuilder b;
  const ProcessId user =
      b.periodic("user", Duration::ms(200), Duration::ms(200), no_op_behavior());
  const ProcessId spor = b.sporadic("spor", 2, Duration::ms(700), Duration::ms(700),
                                    no_op_behavior());
  b.blackboard("cfg", spor, user);
  b.priority(spor, user);
  const Network net = std::move(b).build();
  EXPECT_EQ(net.user_of(spor), user);
  EXPECT_EQ(net.user_of(user), std::nullopt);  // not sporadic
  EXPECT_TRUE(net.in_schedulable_subclass());
}

TEST(Network, SubclassViolatedByTwoUsers) {
  NetworkBuilder b;
  const ProcessId u1 =
      b.periodic("u1", Duration::ms(200), Duration::ms(200), no_op_behavior());
  const ProcessId u2 =
      b.periodic("u2", Duration::ms(200), Duration::ms(200), no_op_behavior());
  const ProcessId spor = b.sporadic("spor", 1, Duration::ms(500), Duration::ms(500),
                                    no_op_behavior());
  b.blackboard("c1", spor, u1);
  b.blackboard("c2", spor, u2);
  b.priority(spor, u1);
  b.priority(spor, u2);
  const Network net = std::move(b).build();
  std::string why;
  EXPECT_FALSE(net.in_schedulable_subclass(&why));
  EXPECT_NE(why.find("spor"), std::string::npos);
  EXPECT_THROW((void)net.hyperperiod(), std::logic_error);
}

TEST(Network, SubclassViolatedByFasterSporadic) {
  // T_u(p) <= T_p is required: a sporadic faster than its user fails.
  NetworkBuilder b;
  const ProcessId user =
      b.periodic("user", Duration::ms(500), Duration::ms(500), no_op_behavior());
  const ProcessId spor = b.sporadic("spor", 1, Duration::ms(200), Duration::ms(200),
                                    no_op_behavior());
  b.blackboard("cfg", spor, user);
  b.priority(spor, user);
  const Network net = std::move(b).build();
  EXPECT_FALSE(net.in_schedulable_subclass());
}

TEST(Network, HyperperiodUsesServerPeriods) {
  // Sporadic 700 served at its user's 200: H = lcm(200, 100) = 200, the
  // 700 never enters (Fig. 3: "its period 700 is replaced by ... 200").
  NetworkBuilder b;
  const ProcessId fast =
      b.periodic("fast", Duration::ms(100), Duration::ms(100), no_op_behavior());
  const ProcessId user =
      b.periodic("user", Duration::ms(200), Duration::ms(200), no_op_behavior());
  const ProcessId spor = b.sporadic("spor", 2, Duration::ms(700), Duration::ms(700),
                                    no_op_behavior());
  b.blackboard("cfg", spor, user);
  b.priority(spor, user);
  const Network net = std::move(b).build();
  EXPECT_EQ(net.hyperperiod(), Duration::ms(200));
  (void)fast;
}

TEST(Network, AutoRateMonotonicPriorities) {
  NetworkBuilder b;
  const ProcessId slow =
      b.periodic("slow", Duration::ms(400), Duration::ms(400), no_op_behavior());
  const ProcessId fast =
      b.periodic("fast", Duration::ms(100), Duration::ms(100), no_op_behavior());
  b.fifo("c", slow, fast);  // writer is the *slower* process
  b.auto_rate_monotonic_priorities();
  const Network net = std::move(b).build();
  // Rate-monotonic: the faster process gets the higher priority.
  EXPECT_TRUE(net.has_priority(fast, slow));
}

TEST(Network, ExplicitPriorityWinsOverAutoRule) {
  NetworkBuilder b;
  const ProcessId slow =
      b.periodic("slow", Duration::ms(400), Duration::ms(400), no_op_behavior());
  const ProcessId fast =
      b.periodic("fast", Duration::ms(100), Duration::ms(100), no_op_behavior());
  b.fifo("c", slow, fast);
  b.priority(slow, fast);  // explicit, against rate-monotonic
  b.auto_rate_monotonic_priorities();
  const Network net = std::move(b).build();
  EXPECT_TRUE(net.has_priority(slow, fast));
  EXPECT_FALSE(net.has_priority(fast, slow));
}

TEST(Network, ToDotMentionsProcessesAndChannels) {
  ProcessId a, b;
  NetworkBuilder builder = two_process_builder(&a, &b);
  builder.fifo("stream", a, b);
  builder.priority(a, b);
  const Network net = std::move(builder).build();
  const std::string dot = net.to_dot();
  EXPECT_NE(dot.find("\"A\\n100ms\""), std::string::npos);
  EXPECT_NE(dot.find("stream"), std::string::npos);
}

}  // namespace
}  // namespace fppn
