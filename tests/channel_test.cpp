#include "fppn/channel.hpp"

#include <gtest/gtest.h>

namespace fppn {
namespace {

TEST(FifoChannel, QueueSemantics) {
  ChannelRuntime c(ChannelKind::kFifo);
  c.write(Value{std::int64_t{1}});
  c.write(Value{std::int64_t{2}});
  EXPECT_EQ(c.buffered(), 2u);
  EXPECT_EQ(c.read(), Value{std::int64_t{1}});
  EXPECT_EQ(c.read(), Value{std::int64_t{2}});
  EXPECT_EQ(c.buffered(), 0u);
}

TEST(FifoChannel, EmptyReadIsNonBlockingNoData) {
  // §II-A: reading from an empty FIFO returns the non-availability value.
  ChannelRuntime c(ChannelKind::kFifo);
  EXPECT_FALSE(has_data(c.read()));
}

TEST(FifoChannel, ReadConsumes) {
  ChannelRuntime c(ChannelKind::kFifo);
  c.write(Value{1.0});
  EXPECT_TRUE(has_data(c.read()));
  EXPECT_FALSE(has_data(c.read()));
}

TEST(BlackboardChannel, RemembersLastValue) {
  ChannelRuntime c(ChannelKind::kBlackboard);
  c.write(Value{1.0});
  c.write(Value{2.0});
  EXPECT_EQ(c.read(), Value{2.0});
  // Readable multiple times.
  EXPECT_EQ(c.read(), Value{2.0});
  EXPECT_EQ(c.buffered(), 1u);
}

TEST(BlackboardChannel, UninitializedReadIsNoData) {
  ChannelRuntime c(ChannelKind::kBlackboard);
  EXPECT_FALSE(has_data(c.read()));
}

TEST(ChannelRuntime, PeekDoesNotConsume) {
  ChannelRuntime f(ChannelKind::kFifo);
  f.write(Value{std::int64_t{9}});
  EXPECT_EQ(f.peek(), Value{std::int64_t{9}});
  EXPECT_EQ(f.buffered(), 1u);
  ChannelRuntime b(ChannelKind::kBlackboard);
  EXPECT_FALSE(has_data(b.peek()));
}

TEST(ChannelRuntime, HistoryRecordsEveryWrite) {
  ChannelRuntime c(ChannelKind::kBlackboard);
  c.write(Value{1.0});
  c.write(Value{2.0});
  (void)c.read();
  ASSERT_EQ(c.history().size(), 2u);  // reads never appear in the history
  EXPECT_EQ(c.history()[0], Value{1.0});
  EXPECT_EQ(c.history()[1], Value{2.0});
}

TEST(ChannelRuntime, ResetClearsEverything) {
  ChannelRuntime c(ChannelKind::kFifo);
  c.write(Value{1.0});
  c.reset();
  EXPECT_EQ(c.buffered(), 0u);
  EXPECT_TRUE(c.history().empty());
  EXPECT_FALSE(has_data(c.read()));
}

TEST(ChannelKind, ToString) {
  EXPECT_EQ(to_string(ChannelKind::kFifo), "fifo");
  EXPECT_EQ(to_string(ChannelKind::kBlackboard), "blackboard");
  EXPECT_EQ(to_string(ChannelScope::kExternalInput), "external-input");
}

}  // namespace
}  // namespace fppn
