#include "sim/vcd.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "apps/fig1.hpp"
#include "runtime/vm_runtime.hpp"
#include "sched/list_scheduler.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

TimedTrace small_trace() {
  TimedTrace t;
  t.add(TraceEvent{TraceEventKind::kOverhead, 0, ProcessorId(), "arrivals",
                   Time::ms(0), Time::ms(20)});
  t.add(TraceEvent{TraceEventKind::kJobRun, 0, ProcessorId(0), "A[1]", Time::ms(20),
                   Time::ms(45)});
  t.add(TraceEvent{TraceEventKind::kJobRun, 0, ProcessorId(1), "B[1]", Time::ms(45),
                   Time::ms(70)});
  t.add(TraceEvent{TraceEventKind::kDeadlineMiss, 0, ProcessorId(1), "B[1]",
                   Time::ms(70), std::nullopt});
  return t;
}

TEST(Vcd, HeaderAndDefinitions) {
  const std::string vcd = render_vcd(small_trace(), 2);
  EXPECT_NE(vcd.find("$timescale 1us $end"), std::string::npos);
  EXPECT_NE(vcd.find("M1_busy"), std::string::npos);
  EXPECT_NE(vcd.find("M2_busy"), std::string::npos);
  EXPECT_NE(vcd.find("deadline_miss"), std::string::npos);
  EXPECT_NE(vcd.find("runtime_overhead"), std::string::npos);
  EXPECT_NE(vcd.find("A_1"), std::string::npos);  // sanitized job name
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
}

TEST(Vcd, TimestampsInMicroseconds) {
  const std::string vcd = render_vcd(small_trace(), 2);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("#20000"), std::string::npos);  // 20 ms = 20000 us
  EXPECT_NE(vcd.find("#45000"), std::string::npos);
  EXPECT_NE(vcd.find("#70000"), std::string::npos);
}

TEST(Vcd, ChangesAreTimeSorted) {
  const std::string vcd = render_vcd(small_trace(), 2);
  std::int64_t last = -1;
  std::istringstream is(vcd);
  std::string line;
  bool in_dump = false;
  while (std::getline(is, line)) {
    if (line == "$end") {
      in_dump = true;
      continue;
    }
    if (in_dump && !line.empty() && line[0] == '#') {
      const std::int64_t tick = std::stoll(line.substr(1));
      EXPECT_GT(tick, last);
      last = tick;
    }
  }
  EXPECT_GE(last, 70000);
}

TEST(Vcd, FullPolicyRunExports) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const auto schedule = list_schedule(derived.graph, PriorityHeuristic::kAlapEdf, 2);
  VmRunOptions opts;
  opts.frames = 2;
  opts.overhead = OverheadModel::mppa_measured();
  const RunResult run = run_static_order_vm(app.net, derived, schedule, opts,
                                            app.make_inputs({1, 2, 3}, {}), {});
  const std::string vcd = render_vcd(run.trace, 2);
  // Every executed job label appears as a signal.
  EXPECT_NE(vcd.find("InputA_1"), std::string::npos);
  EXPECT_NE(vcd.find("FilterA_2"), std::string::npos);
  // Fractional model times quantize to whole microseconds without throwing.
  EXPECT_GT(vcd.size(), 500u);
}

TEST(Vcd, RationalTimesQuantize) {
  TimedTrace t;
  t.add(TraceEvent{TraceEventKind::kJobRun, 0, ProcessorId(0), "x[1]",
                   Time(Rational(40, 3)), Time(Rational(80, 3))});
  const std::string vcd = render_vcd(t, 1);
  EXPECT_NE(vcd.find("#13333"), std::string::npos);  // floor(40/3 * 1000)
  EXPECT_NE(vcd.find("#26666"), std::string::npos);
}

}  // namespace
}  // namespace fppn
