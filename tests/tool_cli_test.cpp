// Golden CLI tests for the fppn_tool binary: every subcommand's exit
// code and stdout/stderr contract, including the exit-2 flag errors.
// These run the real binary (FPPN_TOOL_BIN, wired by CMake) so they pin
// the *user-visible* surface — the engine refactor underneath must keep
// every one of these bytes stable.
//
// Exit codes: 0 ok, 1 hard error, 2 bad usage, 3 infeasible/deadline
// miss, 4 fuzz mismatch.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

const std::string kFig1 =
    std::string(FPPN_TEST_SOURCE_DIR) + "/../examples/fig1.fppn";

/// Fresh per-test scratch directory under the system temp dir.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("fppn_cli_test_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct CmdResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Runs `fppn_tool <args>` with stdout/stderr captured to files.
CmdResult run_tool(const std::string& args) {
  static int invocation = 0;
  const TempDir dir("run" + std::to_string(++invocation));
  const fs::path out = fs::path(dir.path()) / "out";
  const fs::path err = fs::path(dir.path()) / "err";
  const std::string command = std::string("'") + FPPN_TOOL_BIN + "' " + args +
                              " > '" + out.string() + "' 2> '" + err.string() +
                              "'";
  const int status = std::system(command.c_str());
  CmdResult result;
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  result.out = slurp(out);
  result.err = slurp(err);
  return result;
}

/// First `n` lines of `text` (with trailing newline on each).
std::string first_lines(const std::string& text, std::size_t n) {
  std::size_t pos = 0;
  for (std::size_t i = 0; i < n && pos != std::string::npos; ++i) {
    pos = text.find('\n', pos);
    if (pos != std::string::npos) ++pos;
  }
  return text.substr(0, pos == std::string::npos ? text.size() : pos);
}

TEST(ToolCli, CheckReportsTheSchedulableSubclass) {
  const CmdResult r = run_tool("check " + kFig1);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out,
            "ok: 7 processes, 12 channels\n"
            "schedulable subclass: yes; hyperperiod 200 ms\n");
  EXPECT_EQ(r.err, "");
}

TEST(ToolCli, TaskgraphShowsDerivationAndLoadBound) {
  const CmdResult r = run_tool("taskgraph " + kFig1);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(first_lines(r.out, 2),
            "hyperperiod 200 ms, 10 jobs, 11 edges (5 removed by reduction)\n"
            "load 5/3 (~1.6667) => >= 2 processor(s)\n");
}

TEST(ToolCli, ScheduleIsFeasibleOnTwoProcessors) {
  const CmdResult r = run_tool("schedule " + kFig1);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(first_lines(r.out, 2),
            "list schedule, SP heuristic alap-edf on 2 processor(s): FEASIBLE, "
            "makespan 150 ms\n"
            "(searched 6 candidate(s), 6 evaluated + 0 cached, on 1 worker(s); "
            "winner: alap-edf, seed 1)\n");
  // Kernel instrumentation rides along whenever the counters are nonzero.
  EXPECT_NE(r.out.find("\nevaluations: "), std::string::npos) << r.out;
}

TEST(ToolCli, InfeasibleScheduleExitsThreeAndNamesViolations) {
  const CmdResult r = run_tool("schedule " + kFig1 + " -m 1");
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.out.find("infeasible"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("[deadline] OutputA[1]: ends 225 > D=200"),
            std::string::npos)
      << r.out;
}

TEST(ToolCli, ColdThenWarmCacheRunAnswersFromTheCache) {
  const TempDir dir("cache");
  const std::string cache = dir.path() + "/cache";
  const CmdResult cold =
      run_tool("schedule " + kFig1 + " --cache-dir '" + cache + "'");
  EXPECT_EQ(cold.exit_code, 0);
  // The cache line comes first, then the result.
  EXPECT_EQ(first_lines(cold.out, 1), "cache '" + cache +
                                          "': 0 hit(s), 6 miss(es), 6 "
                                          "store(s), 0 eviction(s)\n");

  const CmdResult warm =
      run_tool("schedule " + kFig1 + " --cache-dir '" + cache + "'");
  EXPECT_EQ(warm.exit_code, 0);
  EXPECT_EQ(first_lines(warm.out, 1), "cache '" + cache +
                                          "': 6 hit(s), 0 miss(es), 0 "
                                          "store(s), 0 eviction(s)\n");
  EXPECT_NE(warm.out.find("(searched 6 candidate(s), 0 evaluated + 6 cached, "
                          "on 1 worker(s); winner: alap-edf, seed 1)"),
            std::string::npos)
      << warm.out;
  // The cached feasible schedules also feed the warm-start overlay.
  EXPECT_NE(warm.out.find("warm-start overlay: "), std::string::npos)
      << warm.out;
}

TEST(ToolCli, ShardedSearchPicksTheInProcessWinner) {
  const TempDir dir("shards");
  const CmdResult r = run_tool("schedule " + kFig1 + " --shards 2 --shard-dir '" +
                               dir.path() + "/s'");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(first_lines(r.out, 2),
            "list schedule, SP heuristic alap-edf on 2 processor(s): FEASIBLE, "
            "makespan 150 ms\n"
            "(searched 6 candidate(s), 6 evaluated + 0 cached, in 2 shard "
            "process(es); winner: alap-edf, seed 1)\n");
  // Sharded runs never print a (misleading orchestrator-side) cache line.
  EXPECT_EQ(r.out.find("cache '"), std::string::npos) << r.out;
}

TEST(ToolCli, OptimizePresetSearchesTheFullStrategyPortfolio) {
  const TempDir dir("optimize");
  const CmdResult r = run_tool("schedule " + kFig1 + " --optimize --cache-dir '" +
                               dir.path() + "/cache'");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("(searched 10 candidate(s), 10 evaluated + 0 cached, "
                       "on 1 worker(s); winner: "),
            std::string::npos)
      << r.out;
}

TEST(ToolCli, SearchWorkerValidatesItsShardFlags) {
  const CmdResult r = run_tool("search-worker " + kFig1 + " --shard-index 0");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_EQ(r.err,
            "fppn_tool: search-worker requires --shards N, --shard-index I "
            "(0 <= I < N) and --shard-dir D\n");
}

TEST(ToolCli, SimulateMeetsEveryDeadline) {
  const CmdResult r = run_tool("simulate " + kFig1 + " --frames 2");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("18 jobs executed, 2 false skips, 0 deadline miss(es), "
                       "span 350 ms"),
            std::string::npos)
      << r.out;
}

TEST(ToolCli, RoundtripPrintsTheCanonicalNetwork) {
  const CmdResult r = run_tool("roundtrip " + kFig1);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(first_lines(r.out, 1), "# fppn network (7 processes, 12 channels)\n");
  EXPECT_NE(r.out.find("channel fifo inA_fA InputA -> FilterA\n"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("priority CoefB > FilterB\n"), std::string::npos) << r.out;
}

TEST(ToolCli, CacheGcHonorsEntryAndByteBounds) {
  const TempDir dir("gc");
  const std::string cache = dir.path() + "/cache";
  // Populate 6 entries through an unbounded scheduling run.
  ASSERT_EQ(run_tool("schedule " + kFig1 + " --cache-dir '" + cache + "'")
                .exit_code,
            0);

  const CmdResult entries =
      run_tool("cache-gc --cache-dir '" + cache + "' --cache-max-entries 2");
  EXPECT_EQ(entries.exit_code, 0);
  EXPECT_EQ(entries.out,
            "cache-gc '" + cache + "': 2 kept, 4 evicted, index rebuilt\n");

  const CmdResult bytes =
      run_tool("cache-gc --cache-dir '" + cache + "' --cache-max-bytes 1");
  EXPECT_EQ(bytes.exit_code, 0);
  EXPECT_EQ(bytes.out, "cache-gc '" + cache + "': 0 kept, 2 evicted\n");

  const CmdResult unbounded = run_tool("cache-gc --cache-dir '" + cache + "'");
  EXPECT_EQ(unbounded.exit_code, 0);
  EXPECT_EQ(unbounded.out,
            "cache-gc '" + cache +
                "': 0 kept, 0 evicted (no bound given: index maintenance "
                "only)\n");
}

TEST(ToolCli, FuzzSmokeFindsNoMismatches) {
  const CmdResult r = run_tool("fuzz --seeds 5");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(first_lines(r.out, 1).find("fuzz: 5 scenarios"), 0u) << r.out;
  EXPECT_NE(r.out.find(", 0 mismatches"), std::string::npos) << r.out;
}

TEST(ToolCli, HelpExitsZero) {
  const CmdResult r = run_tool("--help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(first_lines(r.out, 1).find("usage: fppn_tool "), 0u) << r.out;
  EXPECT_NE(r.out.find("--cache-max-bytes B"), std::string::npos) << r.out;
}

TEST(ToolCli, FlagErrorsExitTwoWithTheOffendingValue) {
  const std::vector<std::pair<std::string, std::string>> errors = {
      {"schedule " + kFig1 + " --jobs banana",
       "fppn_tool: expected an integer for --jobs, got 'banana'\n"},
      {"schedule " + kFig1 + " -m 0", "fppn_tool: -m must be >= 1, got '0'\n"},
      {"schedule " + kFig1 + " -m 99999999999999999999",
       "fppn_tool: -m out of range, got '99999999999999999999'\n"},
      {"simulate " + kFig1 + " --frames -3",
       "fppn_tool: --frames must be >= 0, got '-3'\n"},
      {"schedule " + kFig1 + " --seed -5",
       "fppn_tool: expected an unsigned integer for --seed, got '-5'\n"},
      {"schedule " + kFig1 + " --shard-dir /tmp/nowhere",
       "fppn_tool: --shard-dir requires --shards N\n"},
      {"schedule " + kFig1 + " --cache-max-bytes 0",
       "fppn_tool: --cache-max-bytes must be >= 1, got '0'\n"},
  };
  for (const auto& [args, message] : errors) {
    const CmdResult r = run_tool(args);
    EXPECT_EQ(r.exit_code, 2) << args;
    EXPECT_EQ(r.err, message) << args;
    EXPECT_EQ(r.out, "") << args;
  }
}

TEST(ToolCli, UnknownCommandDumpsUsageAndExitsTwo) {
  const CmdResult r = run_tool("frobnicate " + kFig1);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_EQ(r.err.find("usage: fppn_tool "), 0u) << r.err;
}

TEST(ToolCli, MissingInputFileIsAHardError) {
  const CmdResult r = run_tool("schedule /nonexistent.fppn");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.err, "fppn_tool: cannot open '/nonexistent.fppn'\n");
}

}  // namespace
