// End-to-end integration: network -> task graph -> schedule -> online
// policy -> functional equivalence with the zero-delay semantics, swept
// over applications, processor counts and execution-time jitter
// (parameterized property suite).
#include <gtest/gtest.h>

#include "apps/fft.hpp"
#include "apps/fig1.hpp"
#include "apps/fms.hpp"
#include "runtime/vm_runtime.hpp"
#include "sched/search.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

struct SweepParam {
  std::int64_t processors;
  std::uint64_t seed;
};

class Fig1EndToEnd : public ::testing::TestWithParam<SweepParam> {};

TEST_P(Fig1EndToEnd, PipelineDeterministicUnderJitter) {
  const auto [processors, seed] = GetParam();
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const auto attempt = best_schedule(derived.graph, processors);
  ASSERT_TRUE(attempt.feasible);

  const std::int64_t frames = 3;
  std::map<ProcessId, SporadicScript> scripts;
  scripts.emplace(app.coef_b,
                  SporadicScript::random(2, Duration::ms(700),
                                         Time::ms(200 * (frames - 1)), seed));
  const InputScripts inputs =
      app.make_inputs({3, 1, 4, 1, 5, 9, 2, 6}, {1.5, 2.5, 3.5, 4.5, 5.5, 6.5});

  // Jittered actual execution times, always within the WCET.
  VmRunOptions opts;
  opts.frames = frames;
  opts.actual_time = [seed](JobId id, std::int64_t frame) {
    const std::uint64_t mix =
        seed * 1000003ULL + id.value() * 97ULL + static_cast<std::uint64_t>(frame);
    return Duration::ms(5 + static_cast<std::int64_t>(mix % 21));
  };
  const RunResult run =
      run_static_order_vm(app.net, derived, attempt.schedule, opts, inputs, scripts);
  EXPECT_TRUE(run.met_all_deadlines());

  const ZeroDelayResult ref =
      zero_delay_reference(app.net, derived.hyperperiod, frames, inputs, scripts);
  EXPECT_TRUE(run.histories.functionally_equal(ref.histories))
      << run.histories.diff(ref.histories, app.net);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Fig1EndToEnd,
    ::testing::Values(SweepParam{2, 1}, SweepParam{2, 7}, SweepParam{2, 42},
                      SweepParam{3, 1}, SweepParam{3, 99}, SweepParam{4, 5},
                      SweepParam{4, 1234}));

class FftEndToEnd : public ::testing::TestWithParam<int> {};

TEST_P(FftEndToEnd, SpectraIdenticalOnAnyProcessorCount) {
  const int processors = GetParam();
  const auto app = apps::build_fft(8);
  const auto derived =
      derive_task_graph(app.net, app.uniform_wcets(Duration::ratio_ms(40, 3)));
  const auto attempt = best_schedule(derived.graph, processors);
  ASSERT_TRUE(attempt.feasible);
  const std::vector<std::vector<double>> frames = {
      {1, 2, 3, 4, 5, 6, 7, 8}, {8, 7, 6, 5, 4, 3, 2, 1}};
  const InputScripts inputs = app.make_inputs(frames);
  VmRunOptions opts;
  opts.frames = 2;
  const RunResult run =
      run_static_order_vm(app.net, derived, attempt.schedule, opts, inputs, {});
  EXPECT_TRUE(run.met_all_deadlines());
  const ZeroDelayResult ref =
      zero_delay_reference(app.net, derived.hyperperiod, 2, inputs, {});
  EXPECT_TRUE(run.histories.functionally_equal(ref.histories));
}

INSTANTIATE_TEST_SUITE_P(Processors, FftEndToEnd, ::testing::Values(2, 3, 4, 6));

TEST(FmsEndToEnd, FullHyperperiodOnOneProcessor) {
  // The paper's single-processor deployment: one 10 s frame, sporadic
  // pilot commands, no deadline misses, deterministic against the
  // zero-delay reference.
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  const auto attempt = best_schedule(derived.graph, 1);
  ASSERT_TRUE(attempt.feasible);

  // Keep commands within the span covered by the single frame's server
  // subsets (left-closed windows end T_u before the frame does).
  const auto scripts = app.random_commands(Time::ms(9000), /*seed=*/11);
  const InputScripts inputs = app.make_inputs(55, /*seed=*/11);
  VmRunOptions opts;
  opts.frames = 1;
  const RunResult run =
      run_static_order_vm(app.net, derived, attempt.schedule, opts, inputs, scripts);
  EXPECT_TRUE(run.met_all_deadlines())
      << run.misses.size() << " misses, first: "
      << (run.misses.empty() ? ""
                             : derived.graph.job(run.misses.front().job).name);
  const ZeroDelayResult ref =
      zero_delay_reference(app.net, derived.hyperperiod, 1, inputs, scripts);
  EXPECT_TRUE(run.histories.functionally_equal(ref.histories))
      << run.histories.diff(ref.histories, app.net);
}

TEST(FmsEndToEnd, TwoProcessorRunAgreesWithOneProcessorRun) {
  // Prop. 2.1 + Prop. 4.1 jointly: the mapping must not change outputs.
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  const auto scripts = app.random_commands(Time::ms(9000), /*seed=*/23);
  const InputScripts inputs = app.make_inputs(55, /*seed=*/23);
  VmRunOptions opts;
  opts.frames = 1;

  const auto one = best_schedule(derived.graph, 1);
  const auto two = best_schedule(derived.graph, 2);
  ASSERT_TRUE(one.feasible);
  ASSERT_TRUE(two.feasible);
  const RunResult r1 =
      run_static_order_vm(app.net, derived, one.schedule, opts, inputs, scripts);
  const RunResult r2 =
      run_static_order_vm(app.net, derived, two.schedule, opts, inputs, scripts);
  EXPECT_TRUE(r1.histories.functionally_equal(r2.histories))
      << r1.histories.diff(r2.histories, app.net);
}

TEST(FmsEndToEnd, OriginalUniprocessorPrototypeEquivalence) {
  // §V-B: the FMS priorities were chosen rate-monotonic "in line with the
  // scheduling priority of the original uniprocessor prototype, making
  // the two implementations functionally equivalent, which we verified by
  // testing". Our analogue: the zero-delay semantics (the formal
  // uniprocessor fixed-priority execution) vs the multiprocessor VM.
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  const auto attempt = best_schedule(derived.graph, 3);
  ASSERT_TRUE(attempt.feasible);
  const InputScripts inputs = app.make_inputs(55, /*seed=*/5);
  VmRunOptions opts;
  opts.frames = 1;
  const RunResult run =
      run_static_order_vm(app.net, derived, attempt.schedule, opts, inputs, {});
  const ZeroDelayResult ref =
      zero_delay_reference(app.net, derived.hyperperiod, 1, inputs, {});
  EXPECT_TRUE(run.histories.functionally_equal(ref.histories));
}

}  // namespace
}  // namespace fppn
