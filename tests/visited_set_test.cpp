// sched::VisitedSet: the concurrent order-score memo behind the search's
// deduplicated evaluation. These tests pin the slot protocol (claim /
// publish / read-back), the saturation behavior (drop, never resize or
// block) and the concurrency story (parallel inserts and lookups never
// tear a payload).
#include "sched/visited_set.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "rt/time.hpp"

namespace fppn {
namespace {

sched::EvalScore score_of(std::uint64_t violations, std::int64_t num,
                          std::int64_t den) {
  sched::EvalScore s;
  s.deadline_violations = violations;
  s.makespan = Time(Rational(num, den));
  return s;
}

std::vector<JobId> order_of(std::initializer_list<std::size_t> ids) {
  std::vector<JobId> order;
  for (const std::size_t i : ids) {
    order.push_back(JobId(i));
  }
  return order;
}

TEST(VisitedSet, InsertLookupRoundTrip) {
  sched::VisitedSet set(42, 100);
  const std::uint64_t h = set.hash_order(order_of({0, 1, 2, 3}));
  sched::EvalScore out;
  EXPECT_FALSE(set.lookup(h, out));
  set.insert(h, score_of(3, 7, 2));
  ASSERT_TRUE(set.lookup(h, out));
  EXPECT_EQ(out.deadline_violations, 3u);
  EXPECT_EQ(out.makespan, Time(Rational(7, 2)));  // fractional makespan survives
  EXPECT_EQ(set.inserts(), 1u);
  EXPECT_EQ(set.hits(), 1u);
  EXPECT_EQ(set.misses(), 1u);
}

TEST(VisitedSet, HashIsPositionSensitiveAndSeeded) {
  sched::VisitedSet a(1, 100);
  sched::VisitedSet b(2, 100);
  const std::vector<JobId> order = order_of({0, 1, 2, 3});
  const std::vector<JobId> swapped = order_of({1, 0, 2, 3});
  // Same order hashes identically (the whole point of the memo) …
  EXPECT_EQ(a.hash_order(order), a.hash_order(order));
  // … different orders and different seeds hash differently (not a
  // guarantee in theory — 64-bit collisions exist — but these fixed
  // inputs must not collide, or the mixing is broken).
  EXPECT_NE(a.hash_order(order), a.hash_order(swapped));
  EXPECT_NE(a.hash_order(order), b.hash_order(order));
}

TEST(VisitedSet, DuplicateInsertKeepsFirstScore) {
  // Two workers may race to publish the same order; whichever wins, both
  // computed the identical exact score, so first-wins is sound. The test
  // uses different scores only to observe which entry survived.
  sched::VisitedSet set(7, 100);
  const std::uint64_t h = 0xDEADBEEFu;
  set.insert(h, score_of(1, 5, 1));
  set.insert(h, score_of(9, 9, 1));
  sched::EvalScore out;
  ASSERT_TRUE(set.lookup(h, out));
  EXPECT_EQ(out.deadline_violations, 1u);
  EXPECT_EQ(out.makespan, Time::ms(5));
}

TEST(VisitedSet, CapacityIsBoundedPowerOfTwo) {
  sched::VisitedSet small(1, 4);
  EXPECT_GE(small.capacity(), 1024u);  // floor
  EXPECT_EQ(small.capacity() & (small.capacity() - 1), 0u);
  sched::VisitedSet huge(1, 100u << 20);
  EXPECT_LE(huge.capacity(), 1u << 19);  // ceiling: never resizes, never OOMs
}

TEST(VisitedSet, SaturationDropsInsteadOfResizing) {
  sched::VisitedSet set(99, 4);  // 1024 slots
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 4096; ++i) {
    h ^= h << 13;
    h ^= h >> 7;
    h ^= h << 17;
    set.insert(h, score_of(static_cast<std::uint64_t>(i), i + 1, 1));
  }
  EXPECT_GT(set.dropped(), 0u);
  EXPECT_LE(set.inserts(), set.capacity());
}

TEST(VisitedSet, ConcurrentInsertsAndLookupsNeverTear) {
  // Keys encode their own expected payload, so any torn read (key from
  // one entry, payload from another) is detected. 8 threads hammer
  // overlapping key ranges while reading everything back.
  sched::VisitedSet set(5, 8192);
  constexpr std::uint64_t kKeys = 2048;
  const auto key_of = [](std::uint64_t k) { return (k + 1) * 0x9E3779B97F4A7C15ull; };
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t k = static_cast<std::uint64_t>(t) % 4; k < kKeys; k += 2) {
        set.insert(key_of(k), score_of(k, static_cast<std::int64_t>(k) + 1, 1));
      }
      sched::EvalScore out;
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        if (set.lookup(key_of(k), out)) {
          // Whatever entry we see, it must be internally consistent.
          EXPECT_EQ(out.makespan,
                    Time::ms(static_cast<std::int64_t>(out.deadline_violations) + 1));
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // After the join every inserted key reads back exactly.
  sched::EvalScore out;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(set.lookup(key_of(k), out)) << "key " << k;
    EXPECT_EQ(out.deadline_violations, k);
    EXPECT_EQ(out.makespan, Time::ms(static_cast<std::int64_t>(k) + 1));
  }
}

}  // namespace
}  // namespace fppn
