#include <cstdio>

#include "commands.hpp"
#include "engine/engine.hpp"

namespace fppn {
namespace tool {

int cmd_schedule(const Args& args) {
  if (args.shard_dir.has_value() && args.shards < 1) {
    // Silently recomputing in-process would drop shipped shard results.
    std::fprintf(stderr, "fppn_tool: --shard-dir requires --shards N\n");
    return 2;
  }
  const engine::SolveReport report = engine::solve_once(solve_request(args));
  // The sharded orchestrator stays quiet about the cache (the workers own
  // their instances); only the in-process path reports per-solve stats.
  if (!report.sharded) {
    print_cache_line(report);
  }
  print_search_report(report);
  if (!report.feasible()) {
    const FeasibilityReport feas =
        report.search.best.schedule.check_feasibility(report.derived->graph);
    std::printf("%s\n", feas.to_string(report.derived->graph).c_str());
  }
  if (args.gantt) {
    std::printf("%s",
                report.search.best.schedule.to_gantt(report.derived->graph, 100).c_str());
  }
  return report.feasible() ? 0 : 3;
}

}  // namespace tool
}  // namespace fppn
