#include <cstdio>

#include "commands.hpp"

namespace fppn {
namespace tool {

int cmd_roundtrip(const Args& args) {
  const auto parsed = engine::load_network(args.file);
  std::printf("%s", io::write_network(parsed.net, parsed.wcets).c_str());
  return 0;
}

}  // namespace tool
}  // namespace fppn
