// fppn_serve — the scheduling daemon, assembled from the serving stack's
// three layers and nothing else: net::Server (reactor + bounded work
// queue + solver pool) owns the sockets, engine::SolveService owns every
// byte of the wire grammar and the per-request accounting, and
// engine::Engine solves. This file is flag parsing and wiring.
//
// Protocol (one connection per request, text both ways):
//   request:  the bytes of a `.fppn` network description — exactly the
//             existing file format — terminated by the client shutting
//             down its write side (EOF framing, no length prefix); or
//             the single verb "stats".
//   response: one status line
//               "fppn-serve ok fingerprint <16-hex> candidates <N> "
//               "evaluated <N> cached <N> winner <strategy> seed <S> "
//               "feasible <0|1>"
//             followed by the winning schedule in the existing
//             "fppn-schedule v1" entry format (io/schedule_format.hpp,
//             terminated by its "end" line); or one
//               "fppn-serve stats ..." line for the stats verb; or a
//               "fppn-serve error: <message>"
//             line when the request could not be served (parse/solve
//             failure, queue full, request over --max-request-bytes, or
//             a torn read). The connection is closed after the response.
//
// The daemon listens on a Unix socket (--socket), a TCP endpoint
// (--listen HOST:PORT, port 0 = ephemeral), or both at once. One reactor
// thread runs every connection's read/write state machine; --workers
// (alias --solver-threads) solver threads pop complete requests off a
// bounded queue (--queue-capacity) and solve through ONE engine::Engine,
// so a repeat request for an already-solved fingerprint reports
// `evaluated 0` — the daemon's L1 (the shared in-memory ScheduleCache,
// or a disk cache when --cache-dir is given, whose bounds a background
// gc thread re-enforces every --gc-interval-ms while serving). A full
// queue is answered immediately with "fppn-serve error: overloaded" —
// backpressure is explicit, never an unbounded backlog.
//
// Deadlines (all off by default, 0 = disabled): --idle-timeout-ms closes
// connections that send no first byte, --request-timeout-ms bounds first
// byte to EOF (a slow-loris drip never extends it), --write-timeout-ms
// drops peers that stop draining their response, and
// --queue-deadline-ms sheds requests whose queue wait already exceeds
// the deadline ("fppn-serve error: deadline exceeded" — the solve is
// skipped entirely). --degrade-under-load answers instead of shedding:
// when the queue is at least half full, an --optimize daemon solves
// with the quick preset (counted as `degraded` in stats).
//
// --fault-seed/--fault-rate arm the deterministic fault injector
// (src/testing/fault_injector.hpp) for chaos testing: accept/read/
// write/poll and the cache persistence path see seeded EINTR/EAGAIN/
// short-transfer/ECONNRESET faults. Testing-only; the seed is printed
// so a failing run replays bit-identically.
//
// Shutdown: SIGINT/SIGTERM begin the drain — listeners close (the Unix
// socket file is unlinked), queued requests finish, every response is
// written — then the process exits 0.
//
// `--request FILE` flips the binary into a one-shot client: connect,
// send FILE, print the response to stdout, exit 0 on an "ok" response —
// the client half of the CI smoke and the golden serve tests. `--stats`
// is the same for the stats verb (exit 0 on a "fppn-serve stats" line).
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/service.hpp"
#include "net/listener.hpp"
#include "net/server.hpp"
#include "testing/fault_injector.hpp"

using namespace fppn;

namespace {

volatile std::sig_atomic_t g_stop = 0;
int g_stop_pipe[2] = {-1, -1};  ///< self-pipe: the handler wakes the reactor

void handle_stop_signal(int) {
  g_stop = 1;
  // One async-signal-safe write makes the pipe's read end readable; the
  // reactor (and the gc thread) poll it and never drain it, so a single
  // byte wakes every watcher.
  if (g_stop_pipe[1] >= 0) {
    const char byte = 1;
    (void)!::write(g_stop_pipe[1], &byte, 1);
  }
}

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: fppn_serve --socket PATH | --listen HOST:PORT [options]\n"
      "       fppn_serve --socket PATH --request FILE   # one-shot client\n"
      "       fppn_serve --socket PATH --stats          # one-shot stats query\n"
      "options:\n"
      "  --socket PATH          Unix socket to listen on (created; unlinked on exit)\n"
      "  --listen HOST:PORT     TCP endpoint to listen on (port 0 = ephemeral;\n"
      "                         the bound port is reported on stderr)\n"
      "  --workers N            solver threads (default 2)\n"
      "  --solver-threads N     alias for --workers\n"
      "  --queue-capacity N     bounded work queue depth; a full queue answers\n"
      "                         'fppn-serve error: overloaded' (default 64)\n"
      "  --max-request-bytes N  reject requests larger than N bytes\n"
      "                         (default 8388608; 0 = unlimited)\n"
      "  -m N                   processor count to solve for (default 2)\n"
      "  --seed S               search base seed (default 1)\n"
      "  --jobs W               per-solve search worker threads (0 = auto)\n"
      "  --optimize             the optimizing search preset per request\n"
      "  --verbose              per-request summary lines on stderr\n"
      "  --cache-dir D          disk schedule cache instead of the in-memory L1\n"
      "  --cache-max-entries N  disk cache entry bound (0 = unbounded)\n"
      "  --cache-max-bytes N    disk cache byte bound (0 = unbounded)\n"
      "  --gc-interval-ms N     background disk-cache gc period (default 5000)\n"
      "  --idle-timeout-ms N    close connections idle before their first byte\n"
      "                         (default 0 = no deadline)\n"
      "  --request-timeout-ms N close connections whose request is not complete\n"
      "                         N ms after its first byte (default 0)\n"
      "  --write-timeout-ms N   close connections that stop reading their\n"
      "                         response for N ms (default 0)\n"
      "  --queue-deadline-ms N  shed requests that waited longer than N ms in\n"
      "                         the queue: 'fppn-serve error: deadline exceeded'\n"
      "                         (default 0 = never shed)\n"
      "  --degrade-under-load   with --optimize: fall back to the quick preset\n"
      "                         when the queue is at least half full\n"
      "  --fault-seed S         fault-injection seed (testing; with --fault-rate)\n"
      "  --fault-rate R         inject R faults per 1024 syscalls (testing;\n"
      "                         default 0 = injector disarmed)\n"
      "  --request FILE         client mode: send FILE, print the response\n"
      "  --stats                client mode: query the stats verb\n");
}

[[noreturn]] void usage() {
  print_usage(stderr);
  std::exit(2);
}

/// Checked integer parse, fppn_serve's analogue of the fppn_tool helper:
/// bad values exit 2 with an actionable message naming the flag.
std::int64_t parse_int_flag(const char* flag, const std::string& value,
                            std::int64_t min_value) {
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size()) {
    std::fprintf(stderr, "fppn_serve: expected an integer for %s, got '%s'\n", flag,
                 value.c_str());
    std::exit(2);
  }
  if (errno == ERANGE || parsed < min_value) {
    std::fprintf(stderr, "fppn_serve: %s must be >= %lld, got '%s'\n", flag,
                 static_cast<long long>(min_value), value.c_str());
    std::exit(2);
  }
  return parsed;
}

struct ServeArgs {
  std::string socket_path;
  std::string listen_text;                       ///< raw --listen value
  std::optional<net::Endpoint> listen_endpoint;  ///< parsed --listen
  std::string request_file;                      ///< non-empty = client mode
  bool stats_request = false;                    ///< client mode: stats verb
  int solver_threads = 2;
  std::size_t queue_capacity = 64;
  std::size_t max_request_bytes = 8u << 20;  ///< 8 MiB default
  std::int64_t processors = 2;
  std::uint64_t seed = 1;
  int jobs = 0;
  bool optimize = false;
  bool verbose = false;
  std::string cache_dir;
  std::size_t cache_max_entries = 0;
  std::uint64_t cache_max_bytes = 0;
  std::int64_t gc_interval_ms = 5000;
  int idle_timeout_ms = 0;
  int request_timeout_ms = 0;
  int write_timeout_ms = 0;
  int queue_deadline_ms = 0;
  bool degrade_under_load = false;
  std::uint64_t fault_seed = 1;
  int fault_rate = 0;  ///< faults per 1024 intercepted calls; 0 = disarmed

  [[nodiscard]] bool client_mode() const {
    return !request_file.empty() || stats_request;
  }
};

ServeArgs parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_usage(stdout);
      std::exit(0);
    }
  }
  ServeArgs a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      a.socket_path = next();
    } else if (arg == "--listen") {
      a.listen_text = next();
      try {
        a.listen_endpoint = net::Endpoint::parse_tcp(a.listen_text);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "fppn_serve: bad --listen value: %s\n", e.what());
        std::exit(2);
      }
    } else if (arg == "--request") {
      a.request_file = next();
    } else if (arg == "--stats") {
      a.stats_request = true;
    } else if (arg == "--workers") {
      a.solver_threads = static_cast<int>(parse_int_flag("--workers", next(), 1));
    } else if (arg == "--solver-threads") {
      a.solver_threads =
          static_cast<int>(parse_int_flag("--solver-threads", next(), 1));
    } else if (arg == "--queue-capacity") {
      a.queue_capacity =
          static_cast<std::size_t>(parse_int_flag("--queue-capacity", next(), 1));
    } else if (arg == "--max-request-bytes") {
      a.max_request_bytes =
          static_cast<std::size_t>(parse_int_flag("--max-request-bytes", next(), 0));
    } else if (arg == "-m") {
      a.processors = parse_int_flag("-m", next(), 1);
    } else if (arg == "--seed") {
      a.seed = static_cast<std::uint64_t>(parse_int_flag("--seed", next(), 0));
    } else if (arg == "--jobs") {
      a.jobs = static_cast<int>(parse_int_flag("--jobs", next(), 0));
    } else if (arg == "--optimize") {
      a.optimize = true;
    } else if (arg == "--verbose") {
      a.verbose = true;
    } else if (arg == "--cache-dir") {
      a.cache_dir = next();
    } else if (arg == "--cache-max-entries") {
      a.cache_max_entries =
          static_cast<std::size_t>(parse_int_flag("--cache-max-entries", next(), 0));
    } else if (arg == "--cache-max-bytes") {
      a.cache_max_bytes =
          static_cast<std::uint64_t>(parse_int_flag("--cache-max-bytes", next(), 0));
    } else if (arg == "--gc-interval-ms") {
      a.gc_interval_ms = parse_int_flag("--gc-interval-ms", next(), 1);
    } else if (arg == "--idle-timeout-ms") {
      a.idle_timeout_ms = static_cast<int>(parse_int_flag("--idle-timeout-ms", next(), 0));
    } else if (arg == "--request-timeout-ms") {
      a.request_timeout_ms =
          static_cast<int>(parse_int_flag("--request-timeout-ms", next(), 0));
    } else if (arg == "--write-timeout-ms") {
      a.write_timeout_ms =
          static_cast<int>(parse_int_flag("--write-timeout-ms", next(), 0));
    } else if (arg == "--queue-deadline-ms") {
      a.queue_deadline_ms =
          static_cast<int>(parse_int_flag("--queue-deadline-ms", next(), 0));
    } else if (arg == "--degrade-under-load") {
      a.degrade_under_load = true;
    } else if (arg == "--fault-seed") {
      a.fault_seed = static_cast<std::uint64_t>(parse_int_flag("--fault-seed", next(), 0));
    } else if (arg == "--fault-rate") {
      a.fault_rate = static_cast<int>(parse_int_flag("--fault-rate", next(), 0));
      if (a.fault_rate > 1024) {
        a.fault_rate = 1024;
      }
    } else {
      usage();
    }
  }
  if (a.socket_path.empty() && !a.listen_endpoint.has_value()) {
    std::fprintf(stderr, "fppn_serve: --socket PATH is required\n");
    std::exit(2);
  }
  return a;
}

/// Reads the peer's bytes until EOF (client mode; blocking fd).
std::string read_to_eof(int fd) {
  std::string data;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      data.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;
  }
  return data;
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // peer gone (SIGPIPE is ignored); nothing useful to do
    }
    off += static_cast<std::size_t>(n);
  }
}

/// The background gc thread body: every gc_interval_ms, re-enforce the
/// disk cache bounds; exit when the stop pipe becomes readable (it is
/// never drained, so one signal byte reaches every watcher).
void gc_loop(engine::Engine& engine, const ServeArgs& args) {
  for (;;) {
    pollfd pfd{g_stop_pipe[0], POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(args.gc_interval_ms));
    if (rc > 0 || g_stop != 0) {
      return;  // drain began
    }
    if (rc < 0 && errno != EINTR) {
      return;
    }
    if (rc == 0) {
      const sched::CacheGcStats pass = engine.gc_disk_caches();
      if (args.verbose && (pass.kept + pass.evicted) > 0) {
        std::fprintf(stderr, "fppn_serve: gc kept %zu evicted %zu%s\n", pass.kept,
                     pass.evicted, pass.index_rebuilt ? " (index rebuilt)" : "");
      }
      // gc() degrades filesystem failures to warnings; the daemon keeps
      // serving and the next pass retries the victims.
      if (pass.evict_failures > 0) {
        std::fprintf(stderr,
                     "fppn_serve: gc warning: %zu eviction(s) failed (retried)\n",
                     pass.evict_failures);
      }
      if (pass.index_write_failed) {
        std::fprintf(stderr, "fppn_serve: gc warning: could not publish the index\n");
      }
    }
  }
}

int run_server(const ServeArgs& args) {
  std::signal(SIGPIPE, SIG_IGN);
  if (args.fault_rate > 0) {
    testing::FaultInjector::instance().arm(
        testing::FaultConfig::uniform(args.fault_seed,
                                      static_cast<std::uint16_t>(args.fault_rate)));
    // The seed is the whole replay recipe: print it up front so a chaos
    // failure can be reproduced bit-identically.
    std::fprintf(stderr, "fppn_serve: fault injection armed (seed %llu, rate %d/1024)\n",
                 static_cast<unsigned long long>(args.fault_seed), args.fault_rate);
  }
  if (::pipe(g_stop_pipe) < 0) {
    std::fprintf(stderr, "fppn_serve: pipe: %s\n", std::strerror(errno));
    return 1;
  }

  // Bind every endpoint before installing signal handlers or spawning
  // anything: a bad endpoint is a clean exit 1, and the Unix socket file
  // existing is how scripts detect readiness.
  std::vector<net::Listener> listeners;
  try {
    if (!args.socket_path.empty()) {
      listeners.push_back(
          net::Listener::listen(net::Endpoint::unix_socket(args.socket_path)));
    }
    if (args.listen_endpoint.has_value()) {
      listeners.push_back(net::Listener::listen(*args.listen_endpoint));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fppn_serve: %s\n", e.what());
    return 1;
  }

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  for (const net::Listener& listener : listeners) {
    const net::Endpoint& ep = listener.endpoint();
    if (ep.kind == net::Endpoint::Kind::kUnix) {
      std::fprintf(stderr, "fppn_serve: listening on '%s' (%d worker(s), m=%lld)\n",
                   ep.path.c_str(), args.solver_threads,
                   static_cast<long long>(args.processors));
    } else {
      // The bound port (ephemeral binds resolve to a real one) — tests
      // and scripts parse it from this line.
      std::fprintf(stderr,
                   "fppn_serve: listening on tcp %s:%u (%d worker(s), m=%lld)\n",
                   ep.host.c_str(), static_cast<unsigned>(ep.port),
                   args.solver_threads, static_cast<long long>(args.processors));
    }
  }

  engine::Engine engine;
  engine::ServiceOptions service_options;
  service_options.processors = args.processors;
  service_options.seed = args.seed;
  service_options.search_workers = args.jobs;
  service_options.optimize = args.optimize;
  service_options.verbose = args.verbose;
  service_options.degrade_under_load = args.degrade_under_load;
  if (!args.cache_dir.empty()) {
    service_options.cache_dir = args.cache_dir;
    service_options.cache_max_entries = args.cache_max_entries;
    service_options.cache_max_bytes = args.cache_max_bytes;
  }
  service_options.max_request_bytes = args.max_request_bytes;
  engine::SolveService service(engine, service_options);

  net::ServerOptions server_options;
  server_options.solver_threads = args.solver_threads;
  server_options.queue_capacity = args.queue_capacity;
  server_options.max_request_bytes = args.max_request_bytes;
  server_options.stop_fd = g_stop_pipe[0];
  server_options.idle_timeout_ms = args.idle_timeout_ms;
  server_options.request_timeout_ms = args.request_timeout_ms;
  server_options.write_timeout_ms = args.write_timeout_ms;
  server_options.queue_deadline_ms = args.queue_deadline_ms;

  net::ServerProtocol protocol;
  protocol.overloaded = [&service] { return service.overloaded_line(); };
  protocol.oversized = [&service](std::size_t bytes) {
    return service.oversized_line(bytes);
  };
  protocol.read_error = [&service](int error) {
    return service.read_error_line(error);
  };
  protocol.deadline_exceeded = [&service] { return service.deadline_exceeded_line(); };
  protocol.timed_out = [&service](net::Reactor::TimeoutKind kind) {
    // net stays ignorant of the engine: the mapping between the mirror
    // enums lives here in the wiring.
    switch (kind) {
      case net::Reactor::TimeoutKind::kIdle:
        service.note_timeout(engine::ServeTimeout::kIdle);
        break;
      case net::Reactor::TimeoutKind::kRequest:
        service.note_timeout(engine::ServeTimeout::kRequest);
        break;
      case net::Reactor::TimeoutKind::kWrite:
        service.note_timeout(engine::ServeTimeout::kWrite);
        break;
    }
  };

  net::Server server(server_options, protocol,
                     [&service](std::string request, const net::RequestInfo& info) {
                       engine::RequestLoad load;
                       load.queue_wait_ms = info.queue_wait_ms;
                       load.queue_depth = info.queue_depth;
                       load.queue_capacity = info.queue_capacity;
                       return service.handle(request, load);
                     });
  for (net::Listener& listener : listeners) {
    server.add_listener(std::move(listener));
  }
  listeners.clear();

  std::thread gc_thread;
  if (!args.cache_dir.empty()) {
    gc_thread = std::thread(gc_loop, std::ref(engine), std::cref(args));
  }

  server.run();  // returns drained: every accepted request answered

  if (gc_thread.joinable()) {
    gc_thread.join();
  }
  const engine::ServiceStats stats = service.stats();
  std::fprintf(stderr, "fppn_serve: drained; cache served %zu hit(s), %zu miss(es)\n",
               static_cast<std::size_t>(stats.cache_hits),
               static_cast<std::size_t>(stats.cache_misses));
  return 0;
}

/// Client mode: send the request (a file's bytes, or the stats verb),
/// stream the response to stdout. Exit 0 on the expected response kind
/// ("fppn-serve ok" / "fppn-serve stats"), 1 otherwise — so scripts can
/// assert success without parsing.
int run_client(const ServeArgs& args) {
  std::string request_text;
  if (args.stats_request) {
    request_text = "stats\n";
  } else {
    std::ifstream in(args.request_file);
    if (!in) {
      std::fprintf(stderr, "fppn_serve: cannot open '%s'\n", args.request_file.c_str());
      return 1;
    }
    std::ostringstream request;
    request << in.rdbuf();
    request_text = request.str();
  }

  // A Unix socket path wins when both endpoints are given.
  const bool use_unix = !args.socket_path.empty();
  const net::Endpoint endpoint = use_unix
                                     ? net::Endpoint::unix_socket(args.socket_path)
                                     : *args.listen_endpoint;
  const std::string& target = use_unix ? args.socket_path : args.listen_text;
  const int fd = net::connect_endpoint(endpoint);
  if (fd < 0) {
    std::fprintf(stderr, "fppn_serve: cannot connect to '%s': %s\n", target.c_str(),
                 std::strerror(errno));
    return 1;
  }
  std::signal(SIGPIPE, SIG_IGN);
  write_all(fd, request_text);
  ::shutdown(fd, SHUT_WR);  // EOF-frames the request
  const std::string response = read_to_eof(fd);
  ::close(fd);
  std::fputs(response.c_str(), stdout);
  const char* expected = args.stats_request ? "fppn-serve stats" : "fppn-serve ok";
  return response.rfind(expected, 0) == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const ServeArgs args = parse_args(argc, argv);
  return args.client_mode() ? run_client(args) : run_server(args);
}
