// fppn_serve — a minimal Unix-domain-socket scheduling daemon over the
// engine layer, and the proof that engine::Engine is a complete front
// end: the daemon adds no scheduling logic of its own, it only frames
// requests and responses.
//
// Protocol (one connection per request, text both ways):
//   request:  the bytes of a `.fppn` network description — exactly the
//             existing file format — terminated by the client shutting
//             down its write side (EOF framing, no length prefix).
//   response: one status line
//               "fppn-serve ok fingerprint <16-hex> candidates <N> "
//               "evaluated <N> cached <N> winner <strategy> seed <S> "
//               "feasible <0|1>"
//             followed by the winning schedule in the existing
//             "fppn-schedule v1" entry format (io/schedule_format.hpp,
//             terminated by its "end" line), or a single
//               "fppn-serve error: <message>"
//             line when the request could not be served. The connection
//             is closed after the response.
//
// A small worker pool (--workers, default 2) accepts connections on the
// shared listening socket; all workers solve through ONE engine::Engine
// with SearchConfig::memory_cache enabled, so the engine's shared
// in-memory ScheduleCache is the daemon's L1: a repeat request for an
// already-solved network fingerprint reports `evaluated 0` — every
// candidate answered from cache, bit-identical winner (the cold-vs-warm
// determinism contract of sched/parallel_search.hpp).
//
// Shutdown: SIGINT/SIGTERM stop the accept loop, in-flight requests are
// drained, the socket file is unlinked and the process exits 0.
//
// `--request FILE` flips the binary into a one-shot client: connect,
// send FILE, print the response to stdout, exit 0 on an "ok" response —
// the client half of the CI smoke and the golden serve tests.
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "io/schedule_format.hpp"

using namespace fppn;

namespace {

volatile std::sig_atomic_t g_stop = 0;
int g_listen_fd = -1;
int g_stop_pipe[2] = {-1, -1};  ///< self-pipe: the handler wakes the pollers

void handle_stop_signal(int) {
  g_stop = 1;
  // shutdown() does not wake accept() on an AF_UNIX listening socket, so
  // the workers poll the listening fd together with this pipe; one write
  // (async-signal-safe) wakes them all — the read end is never drained.
  if (g_stop_pipe[1] >= 0) {
    const char byte = 1;
    (void)!::write(g_stop_pipe[1], &byte, 1);
  }
}

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: fppn_serve --socket PATH [--workers N] [-m N] [--seed S]\n"
               "                  [--jobs W] [--optimize]\n"
               "       fppn_serve --socket PATH --request FILE   # one-shot client\n"
               "options:\n"
               "  --socket PATH    Unix socket to listen on (created; unlinked on exit)\n"
               "  --workers N      connection worker threads (default 2)\n"
               "  -m N             processor count to solve for (default 2)\n"
               "  --seed S         search base seed (default 1)\n"
               "  --jobs W         per-solve search worker threads (0 = auto)\n"
               "  --optimize       the optimizing search preset per request\n"
               "  --request FILE   client mode: send FILE, print the response\n");
}

[[noreturn]] void usage() {
  print_usage(stderr);
  std::exit(2);
}

/// Checked integer parse, fppn_serve's analogue of the fppn_tool helper:
/// bad values exit 2 with an actionable message naming the flag.
std::int64_t parse_int_flag(const char* flag, const std::string& value,
                            std::int64_t min_value) {
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size()) {
    std::fprintf(stderr, "fppn_serve: expected an integer for %s, got '%s'\n", flag,
                 value.c_str());
    std::exit(2);
  }
  if (errno == ERANGE || parsed < min_value) {
    std::fprintf(stderr, "fppn_serve: %s must be >= %lld, got '%s'\n", flag,
                 static_cast<long long>(min_value), value.c_str());
    std::exit(2);
  }
  return parsed;
}

struct ServeArgs {
  std::string socket_path;
  std::string request_file;  ///< non-empty = client mode
  int workers = 2;
  std::int64_t processors = 2;
  std::uint64_t seed = 1;
  int jobs = 0;
  bool optimize = false;
};

ServeArgs parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_usage(stdout);
      std::exit(0);
    }
  }
  ServeArgs a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      a.socket_path = next();
    } else if (arg == "--request") {
      a.request_file = next();
    } else if (arg == "--workers") {
      a.workers = static_cast<int>(parse_int_flag("--workers", next(), 1));
    } else if (arg == "-m") {
      a.processors = parse_int_flag("-m", next(), 1);
    } else if (arg == "--seed") {
      a.seed = static_cast<std::uint64_t>(parse_int_flag("--seed", next(), 0));
    } else if (arg == "--jobs") {
      a.jobs = static_cast<int>(parse_int_flag("--jobs", next(), 0));
    } else if (arg == "--optimize") {
      a.optimize = true;
    } else {
      usage();
    }
  }
  if (a.socket_path.empty()) {
    std::fprintf(stderr, "fppn_serve: --socket PATH is required\n");
    std::exit(2);
  }
  return a;
}

sockaddr_un socket_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "fppn_serve: socket path too long: '%s'\n", path.c_str());
    std::exit(1);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Reads the peer's bytes until EOF (the protocol's request framing).
std::string read_to_eof(int fd) {
  std::string data;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      data.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;  // EOF or hard error: serve what we have
  }
  return data;
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // peer gone (SIGPIPE is ignored); nothing useful to do
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Solves one request and renders the response — the entire "business
/// logic" of the daemon. Never throws (errors become error responses).
std::string respond(engine::Engine& engine, const ServeArgs& args,
                    const std::string& network_text) {
  try {
    engine::SolveRequest request;
    request.network_text = network_text;
    request.config.processors = args.processors;
    request.config.seed = args.seed;
    request.config.workers = args.jobs;
    request.config.optimize = args.optimize;
    request.config.memory_cache = true;  // the shared L1 across requests
    const engine::SolveReport report = engine.solve(request);

    char status[256];
    std::snprintf(status, sizeof(status),
                  "fppn-serve ok fingerprint %016llx candidates %zu evaluated %zu "
                  "cached %zu winner %s seed %llu feasible %d\n",
                  static_cast<unsigned long long>(report.fingerprint),
                  report.search.candidates, report.search.evaluated,
                  report.search.cache_hits, report.search.best.strategy.c_str(),
                  static_cast<unsigned long long>(report.search.seed),
                  report.feasible() ? 1 : 0);

    io::ScheduleEntry entry;
    entry.fingerprint = report.fingerprint;
    entry.strategy = report.search.best.strategy;
    entry.seed = report.search.seed;
    entry.processors = report.processors;
    const sched::ParallelSearchOptions opts = request.config.search_options();
    entry.max_iterations = opts.max_iterations;
    entry.restarts = opts.restarts;
    entry.detail = report.search.best.detail;
    entry.schedule = report.search.best.schedule;
    return std::string(status) + io::write_schedule_entry(entry);
  } catch (const io::ParseError& e) {
    return std::string("fppn-serve error: parse error: ") + e.what() + "\n";
  } catch (const std::exception& e) {
    return std::string("fppn-serve error: ") + e.what() + "\n";
  }
}

/// One worker: poll {listening socket, stop pipe} -> accept -> read
/// request -> solve -> respond, until the stop signal. The listening
/// socket is non-blocking (several workers may race for one connection),
/// so a lost race is just another poll round.
void worker_loop(engine::Engine& engine, const ServeArgs& args) {
  while (g_stop == 0) {
    pollfd fds[2] = {{g_listen_fd, POLLIN, 0}, {g_stop_pipe[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (g_stop != 0 || (fds[1].revents & POLLIN) != 0) {
      break;
    }
    const int conn = ::accept(g_listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      break;  // listening socket unusable: drain
    }
    const std::string request_text = read_to_eof(conn);
    write_all(conn, respond(engine, args, request_text));
    ::close(conn);
  }
}

int run_server(const ServeArgs& args) {
  std::signal(SIGPIPE, SIG_IGN);
  if (::pipe(g_stop_pipe) < 0) {
    std::fprintf(stderr, "fppn_serve: pipe: %s\n", std::strerror(errno));
    return 1;
  }

  g_listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (g_listen_fd < 0) {
    std::fprintf(stderr, "fppn_serve: socket: %s\n", std::strerror(errno));
    return 1;
  }
  ::fcntl(g_listen_fd, F_SETFL, O_NONBLOCK);
  // A stale socket file from a previous run would make bind fail; the
  // daemon owns its path, so clear it first.
  ::unlink(args.socket_path.c_str());
  sockaddr_un addr = socket_address(args.socket_path);
  if (::bind(g_listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(g_listen_fd, 16) < 0) {
    std::fprintf(stderr, "fppn_serve: cannot listen on '%s': %s\n",
                 args.socket_path.c_str(), std::strerror(errno));
    ::close(g_listen_fd);
    return 1;
  }
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  std::fprintf(stderr, "fppn_serve: listening on '%s' (%d worker(s), m=%lld)\n",
               args.socket_path.c_str(), args.workers,
               static_cast<long long>(args.processors));

  engine::Engine engine;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(args.workers));
  for (int i = 0; i < args.workers; ++i) {
    workers.emplace_back(worker_loop, std::ref(engine), std::cref(args));
  }
  for (std::thread& t : workers) {
    t.join();
  }
  ::close(g_listen_fd);
  ::unlink(args.socket_path.c_str());
  const sched::CacheStats cache = engine.memory_cache().stats();
  std::fprintf(stderr, "fppn_serve: drained; cache served %zu hit(s), %zu miss(es)\n",
               cache.hits, cache.misses);
  return 0;
}

/// Client mode: send the request file, stream the response to stdout.
/// Exit 0 on an "ok" response, 1 on connect/request errors or an error
/// response — so scripts can assert success without parsing.
int run_client(const ServeArgs& args) {
  std::ifstream in(args.request_file);
  if (!in) {
    std::fprintf(stderr, "fppn_serve: cannot open '%s'\n", args.request_file.c_str());
    return 1;
  }
  std::ostringstream request;
  request << in.rdbuf();

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "fppn_serve: socket: %s\n", std::strerror(errno));
    return 1;
  }
  sockaddr_un addr = socket_address(args.socket_path);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::fprintf(stderr, "fppn_serve: cannot connect to '%s': %s\n",
                 args.socket_path.c_str(), std::strerror(errno));
    ::close(fd);
    return 1;
  }
  write_all(fd, request.str());
  ::shutdown(fd, SHUT_WR);  // EOF-frames the request
  const std::string response = read_to_eof(fd);
  ::close(fd);
  std::fputs(response.c_str(), stdout);
  return response.rfind("fppn-serve ok", 0) == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const ServeArgs args = parse_args(argc, argv);
  return args.request_file.empty() ? run_server(args) : run_client(args);
}
