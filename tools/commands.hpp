// The fppn_tool subcommand entry points, one module per command
// (tools/cmd_*.cpp). Each takes the fully parsed Args and returns the
// process exit code: 0 ok, 1 hard error (thrown, rendered by main),
// 2 bad usage, 3 infeasible / deadline miss, 4 fuzz mismatch.
#pragma once

#include "tool_common.hpp"

namespace fppn {
namespace tool {

int cmd_check(const Args& args);
int cmd_taskgraph(const Args& args);
int cmd_schedule(const Args& args);
int cmd_search_worker(const Args& args);
int cmd_simulate(const Args& args);
int cmd_roundtrip(const Args& args);
int cmd_cache_gc(const Args& args);
int cmd_fuzz(const Args& args);

}  // namespace tool
}  // namespace fppn
