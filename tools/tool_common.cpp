#include "tool_common.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "runtime/runtime.hpp"
#include "sched/process_launcher.hpp"
#include "sched/registry.hpp"

namespace fppn {
namespace tool {

std::string g_argv0;

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: fppn_tool "
               "<check|taskgraph|schedule|search-worker|simulate|roundtrip> "
               "<file> [options]\n"
               "       fppn_tool cache-gc --cache-dir D [--cache-max-entries N]\n"
               "                          [--cache-max-bytes B]\n"
               "       fppn_tool fuzz [--seeds N] [--seed S] [--families LIST]\n"
               "                      [-m N] [--repro-dir D] [--replay FILE]\n"
               "                      [--shrink-steps K] [--inject-bug]\n"
               "options:\n"
               "  -m N             processor count (schedule/simulate)\n"
               "  --strategy NAME  scheduling strategy (schedule)\n"
               "  --optimize       parallel multi-strategy/multi-seed search\n"
               "  --jobs W         parallel-search worker threads (0 = auto)\n"
               "  --shards N       split the search across N worker processes\n"
               "                   (schedule); same winner as the in-process run\n"
               "  --shard-dir D    directory the shards publish into; with all\n"
               "                   manifests pre-populated (e.g. from other\n"
               "                   machines) no workers are spawned, only merged\n"
               "  --shard-index I  shard owned by this process (search-worker)\n"
               "  --shard-retries R  re-run a failed shard worker up to R times\n"
               "                   (default 1; same deterministic slice, so the\n"
               "                   merged winner is unchanged)\n"
               "  --runtime NAME   execution backend (simulate)\n"
               "  --frames F       schedule-frame repetitions (simulate)\n"
               "  --overhead F1,Fn frame overhead model (simulate)\n"
               "  --wcet C         uniform WCET override\n"
               "  --unfold U       unfolding factor for the derivation\n"
               "  --seed S         RNG seed (search/sporadic scripts)\n"
               "  --cache-dir D    on-disk schedule cache (schedule/simulate);\n"
               "                   D is created when its parent exists, else error\n"
               "  --cache-max-entries N  bound the cache directory to N entries\n"
               "                   (LRU-style eviction; also the cache-gc bound)\n"
               "  --cache-max-bytes B  bound the cache directory's entry files to\n"
               "                   B bytes total (oldest evicted first; combines\n"
               "                   with --cache-max-entries, also honored by\n"
               "                   cache-gc)\n"
               "  --no-cache       disable the schedule cache even with --cache-dir\n"
               "  --no-incremental score local-search moves from scratch instead of\n"
               "                   resuming from checkpoints (bit-identical winner)\n"
               "  --no-visited-set disable the shared order-score memo across search\n"
               "                   workers (bit-identical winner)\n"
               "  --dot | --gantt  graph/schedule rendering\n"
               "  --seeds N        fuzz: scenario count (default 100)\n"
               "  --families LIST  fuzz: comma-separated scenario families\n"
               "  --repro-dir D    fuzz: write shrunk mismatch repros into D\n"
               "  --replay FILE    fuzz: re-run the checks on a repro file\n"
               "  --shrink-steps K fuzz: shrink budget per mismatch\n"
               "  --inject-bug     fuzz: synthetic mismatch (shrinker self-test)\n");
  std::fprintf(out, "strategies:\n");
  for (const std::string& name : sched::StrategyRegistry::global().names()) {
    const auto strategy = sched::StrategyRegistry::global().create(name);
    std::fprintf(out, "  %-20s %s\n", name.c_str(), strategy->description().c_str());
  }
  std::fprintf(out, "runtimes:\n");
  for (const std::string& name : runtime::RuntimeRegistry::global().names()) {
    const auto backend = runtime::make_runtime(name);
    std::fprintf(out, "  %-20s %s\n", name.c_str(), backend->description().c_str());
  }
}

void usage() {
  print_usage(stderr);
  std::exit(2);
}

constexpr std::int64_t kNoMax = std::numeric_limits<std::int64_t>::max();

std::int64_t parse_int_flag(const char* flag, const std::string& value,
                            std::int64_t min_value, std::int64_t max_value) {
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size()) {
    std::fprintf(stderr, "fppn_tool: expected an integer for %s, got '%s'\n", flag,
                 value.c_str());
    std::exit(2);
  }
  if (errno == ERANGE) {
    std::fprintf(stderr, "fppn_tool: %s out of range, got '%s'\n", flag, value.c_str());
    std::exit(2);
  }
  if (parsed < min_value || parsed > max_value) {
    if (max_value == kNoMax) {
      std::fprintf(stderr, "fppn_tool: %s must be >= %lld, got '%s'\n", flag,
                   static_cast<long long>(min_value), value.c_str());
    } else {
      std::fprintf(stderr, "fppn_tool: %s must be in [%lld, %lld], got '%s'\n", flag,
                   static_cast<long long>(min_value),
                   static_cast<long long>(max_value), value.c_str());
    }
    std::exit(2);
  }
  return parsed;
}

std::uint64_t parse_u64_flag(const char* flag, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const bool has_sign = !value.empty() && (value[0] == '-' || value[0] == '+');
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || has_sign || end != value.c_str() + value.size()) {
    std::fprintf(stderr, "fppn_tool: expected an unsigned integer for %s, got '%s'\n",
                 flag, value.c_str());
    std::exit(2);
  }
  if (errno == ERANGE) {
    std::fprintf(stderr, "fppn_tool: %s out of range, got '%s'\n", flag, value.c_str());
    std::exit(2);
  }
  return parsed;
}

namespace {

/// Validates a user-supplied registry name; on failure prints the name and
/// the registered list (kind = "strategy" / "runtime") and exits 2.
template <class Registry>
void require_known(const Registry& registry, const char* kind, const char* kind_plural,
                   const std::string& name) {
  if (registry.contains(name)) {
    return;
  }
  std::fprintf(stderr, "fppn_tool: unknown %s '%s'\navailable %s:", kind, name.c_str(),
               kind_plural);
  for (const std::string& n : registry.names()) {
    std::fprintf(stderr, " %s", n.c_str());
  }
  std::fprintf(stderr, "\n");
  std::exit(2);
}

/// Full path of this executable, for re-spawning shard workers.
std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return g_argv0;
}

/// Command line of one shard worker: the search-relevant flags of this
/// invocation plus the shard coordinates. Workers share --cache-dir, so a
/// sharded search warms (and is warmed by) the same cache as the
/// in-process run.
std::vector<std::string> worker_argv(const Args& args, const std::string& shard_dir,
                                     int shard_index) {
  std::vector<std::string> argv = {
      self_exe_path(), "search-worker", args.file,
      "-m", std::to_string(args.processors),
      "--shards", std::to_string(args.shards),
      "--shard-index", std::to_string(shard_index),
      "--shard-dir", shard_dir,
      "--seed", std::to_string(args.seed),
      "--unfold", std::to_string(args.unfold),
      "--jobs", std::to_string(args.jobs)};
  if (args.strategy.has_value()) {
    argv.push_back("--strategy");
    argv.push_back(*args.strategy);
  }
  if (args.optimize) {
    argv.push_back("--optimize");
  }
  if (args.no_incremental) {
    argv.push_back("--no-incremental");
  }
  if (args.no_visited_set) {
    argv.push_back("--no-visited-set");
  }
  if (args.uniform_wcet.has_value()) {
    argv.push_back("--wcet");
    argv.push_back(args.uniform_wcet->to_string());
  }
  if (args.cache_dir.has_value() && !args.no_cache) {
    argv.push_back("--cache-dir");
    argv.push_back(*args.cache_dir);
    if (args.cache_max_entries > 0) {
      argv.push_back("--cache-max-entries");
      argv.push_back(std::to_string(args.cache_max_entries));
    }
    if (args.cache_max_bytes > 0) {
      argv.push_back("--cache-max-bytes");
      argv.push_back(std::to_string(args.cache_max_bytes));
    }
  }
  return argv;
}

}  // namespace

Args parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_usage(stdout);
      std::exit(0);
    }
  }
  if (argc < 2) {
    usage();
  }
  Args a;
  a.command = argv[1];
  // cache-gc operates on a cache directory and fuzz on generated
  // scenarios (or --replay FILE), not a network file positional.
  const bool takes_file = a.command != "cache-gc" && a.command != "fuzz";
  if (takes_file) {
    if (argc < 3) {
      usage();
    }
    a.file = argv[2];
  }
  for (int i = takes_file ? 3 : 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
      }
      return argv[++i];
    };
    if (arg == "-m") {
      // Nonsensical values fail here at the CLI, not deep in the engine.
      a.processors = parse_int_flag("-m", next(), 1);
      a.processors_given = true;
    } else if (arg == "--seeds") {
      a.fuzz_seeds = parse_int_flag("--seeds", next(), 1);
    } else if (arg == "--families") {
      a.families = next();
    } else if (arg == "--repro-dir") {
      a.repro_dir = next();
    } else if (arg == "--replay") {
      a.replay = next();
    } else if (arg == "--shrink-steps") {
      a.shrink_steps = static_cast<int>(parse_int_flag(
          "--shrink-steps", next(), 1, std::numeric_limits<int>::max()));
    } else if (arg == "--inject-bug") {
      a.inject_bug = true;
    } else if (arg == "--frames") {
      a.frames = parse_int_flag("--frames", next(), 0);
    } else if (arg == "--unfold") {
      a.unfold = static_cast<int>(
          parse_int_flag("--unfold", next(), 1, std::numeric_limits<int>::max()));
    } else if (arg == "--jobs") {
      a.jobs = static_cast<int>(
          parse_int_flag("--jobs", next(), 0, std::numeric_limits<int>::max()));
    } else if (arg == "--shards") {
      a.shards = static_cast<int>(
          parse_int_flag("--shards", next(), 1, std::numeric_limits<int>::max()));
    } else if (arg == "--shard-index") {
      a.shard_index = static_cast<int>(
          parse_int_flag("--shard-index", next(), 0, std::numeric_limits<int>::max()));
    } else if (arg == "--shard-dir") {
      a.shard_dir = next();
    } else if (arg == "--shard-retries") {
      a.shard_retries = static_cast<int>(
          parse_int_flag("--shard-retries", next(), 0, std::numeric_limits<int>::max()));
    } else if (arg == "--seed") {
      a.seed = parse_u64_flag("--seed", next());
    } else if (arg == "--wcet") {
      a.uniform_wcet = io::parse_duration(next());
    } else if (arg == "--strategy" || arg == "--heuristic") {
      // --heuristic is the pre-registry spelling, kept as an alias.
      a.strategy = next();
      require_known(sched::StrategyRegistry::global(), "strategy", "strategies",
                    *a.strategy);
    } else if (arg == "--runtime") {
      a.runtime = next();
      require_known(runtime::RuntimeRegistry::global(), "runtime", "runtimes",
                    a.runtime);
    } else if (arg == "--cache-dir") {
      a.cache_dir = next();
    } else if (arg == "--cache-max-entries") {
      a.cache_max_entries = static_cast<std::size_t>(parse_int_flag(
          "--cache-max-entries", next(), 1, std::numeric_limits<int>::max()));
    } else if (arg == "--cache-max-bytes") {
      a.cache_max_bytes = static_cast<std::uint64_t>(
          parse_int_flag("--cache-max-bytes", next(), 1));
    } else if (arg == "--no-cache") {
      a.no_cache = true;
    } else if (arg == "--no-incremental") {
      a.no_incremental = true;
    } else if (arg == "--no-visited-set") {
      a.no_visited_set = true;
    } else if (arg == "--optimize") {
      a.optimize = true;
    } else if (arg == "--dot") {
      a.dot = true;
    } else if (arg == "--gantt") {
      a.gantt = true;
    } else if (arg == "--overhead") {
      const std::string spec = next();
      const auto comma = spec.find(',');
      if (comma == std::string::npos) {
        usage();
      }
      a.overhead.first_frame = io::parse_duration(spec.substr(0, comma));
      a.overhead.other_frames = io::parse_duration(spec.substr(comma + 1));
    } else {
      usage();
    }
  }
  return a;
}

engine::SolveRequest solve_request(const Args& args) {
  engine::SolveRequest request;
  request.network_path = args.file;
  request.unfold = args.unfold;
  request.uniform_wcet = args.uniform_wcet;

  engine::SearchConfig& config = request.config;
  config.processors = args.processors;
  config.workers = args.jobs;
  if (args.strategy.has_value()) {
    config.strategies = {*args.strategy};
  }
  config.seed = args.seed;
  config.optimize = args.optimize;
  config.cache_dir = args.cache_dir;
  config.no_cache = args.no_cache;
  config.cache_max_entries = args.cache_max_entries;
  config.cache_max_bytes = args.cache_max_bytes;
  config.shards = args.shards;
  config.shard_dir = args.shard_dir;
  config.use_incremental = !args.no_incremental;
  config.use_visited_set = !args.no_visited_set;
  // Warm-start stays on (the SearchConfig default): the overlay only ever
  // matches or strictly improves the winner, so it is always safe on.

  if (args.shards > 0) {
    // One `fppn_tool search-worker` process per shard, re-spawned from
    // this binary with the search-relevant flags of this invocation.
    const Args captured = args;
    request.make_shard_launcher = [captured](const std::string& shard_dir) {
      sched::LaunchPolicy policy;
      policy.max_attempts = 1 + captured.shard_retries;
      return sched::process_shard_launcher(
          [captured, shard_dir](int shard) {
            return worker_argv(captured, shard_dir, shard);
          },
          policy);
    };
  }
  return request;
}

void print_cache_line(const engine::SolveReport& report) {
  if (!report.cache_attached) {
    return;
  }
  std::printf("cache '%s': %zu hit(s), %zu miss(es), %zu store(s), %zu eviction(s)\n",
              report.cache_directory.c_str(), report.cache.hits, report.cache.misses,
              report.cache.stores, report.cache.evictions);
}

void print_search_report(const engine::SolveReport& report) {
  const sched::ParallelSearchResult& result = report.search;
  std::printf("%s on %lld processor(s): %s, makespan %s ms\n",
              result.best.detail.c_str(), static_cast<long long>(report.processors),
              result.best.feasible ? "FEASIBLE" : "infeasible",
              result.best.makespan.to_string().c_str());
  const std::string workers_phrase =
      report.sharded
          ? "in " + std::to_string(result.workers_used) + " shard process(es)"
          : "on " + std::to_string(result.workers_used) + " worker(s)";
  std::printf(
      "(searched %zu candidate(s), %zu evaluated + %zu cached, %s; "
      "winner: %s, seed %llu)\n",
      result.candidates, result.evaluated, result.cache_hits, workers_phrase.c_str(),
      result.best.strategy.c_str(), static_cast<unsigned long long>(result.seed));
  if (result.warm_candidates > 0) {
    std::printf("warm-start overlay: %zu cached start(s), %zu candidate(s)%s\n",
                result.warm_starts, result.warm_candidates,
                result.warm_start_won ? ", improved the plan winner" : "");
  }
  // Evaluation accounting of the fresh candidate runs (zero when every
  // candidate came from the cache or shard processes did the evaluating).
  if (result.evals_full + result.evals_incremental + result.visited_skips > 0) {
    std::printf(
        "evaluations: %llu full, %llu incremental (%llu spliced), "
        "%llu visited-set skip(s)\n",
        static_cast<unsigned long long>(result.evals_full),
        static_cast<unsigned long long>(result.evals_incremental),
        static_cast<unsigned long long>(result.evals_spliced),
        static_cast<unsigned long long>(result.visited_skips));
  }
}

}  // namespace tool
}  // namespace fppn
