#include <cstdio>

#include "commands.hpp"

namespace fppn {
namespace tool {

int cmd_check(const Args& args) {
  const auto parsed = engine::load_network(args.file);
  std::printf("ok: %zu processes, %zu channels\n", parsed.net.process_count(),
              parsed.net.channel_count());
  std::string why;
  if (parsed.net.in_schedulable_subclass(&why)) {
    std::printf("schedulable subclass: yes; hyperperiod %s ms\n",
                parsed.net.hyperperiod().to_string().c_str());
  } else {
    std::printf("schedulable subclass: NO (%s)\n", why.c_str());
  }
  return 0;
}

}  // namespace tool
}  // namespace fppn
