#include <cstdio>

#include "commands.hpp"
#include "sched/schedule_cache.hpp"

namespace fppn {
namespace tool {

/// Offline cache maintenance: reconcile the recency index with the entry
/// files (rebuilding a missing/corrupt index) and, with
/// --cache-max-entries / --cache-max-bytes, evict down to the bounds —
/// the CLI face of sched::ScheduleCache::gc().
int cmd_cache_gc(const Args& args) {
  if (!args.cache_dir.has_value()) {
    std::fprintf(stderr, "fppn_tool: cache-gc requires --cache-dir D\n");
    return 2;
  }
  sched::ScheduleCache cache(*args.cache_dir, args.cache_max_entries,
                             args.cache_max_bytes);
  const sched::CacheGcStats gc = cache.gc();
  const bool unbounded = args.cache_max_entries == 0 && args.cache_max_bytes == 0;
  std::printf("cache-gc '%s': %zu kept, %zu evicted%s%s\n", cache.directory().c_str(),
              gc.kept, gc.evicted, gc.index_rebuilt ? ", index rebuilt" : "",
              unbounded ? " (no bound given: index maintenance only)" : "");
  // Filesystem failures degraded to warnings (gc() never throws for
  // them); the next pass retries, so they are loud but not fatal.
  if (gc.evict_failures > 0) {
    std::fprintf(stderr,
                 "cache-gc warning: %zu eviction(s) failed (kept, retried next pass)\n",
                 gc.evict_failures);
  }
  if (gc.index_write_failed) {
    std::fprintf(stderr, "cache-gc warning: could not publish the rebuilt index\n");
  }
  return 0;
}

}  // namespace tool
}  // namespace fppn
