#include <algorithm>
#include <cstdio>
#include <map>

#include "commands.hpp"
#include "engine/engine.hpp"
#include "runtime/runtime.hpp"
#include "sim/gantt.hpp"

namespace fppn {
namespace tool {

int cmd_simulate(const Args& args) {
  const engine::SolveReport report = engine::solve_once(solve_request(args));
  print_cache_line(report);
  if (!report.feasible()) {
    std::printf("warning: no feasible schedule found; simulating anyway\n");
  }
  const io::ParsedNetwork& parsed = *report.network;
  const DerivedTaskGraph& derived = *report.derived;
  // Random admissible sporadic scripts over the whole run.
  std::map<ProcessId, SporadicScript> scripts;
  const Time horizon =
      Time() + derived.hyperperiod * Rational(std::max<std::int64_t>(args.frames - 1, 0));
  std::uint64_t salt = args.seed;
  for (const auto& [p, info] : derived.servers) {
    (void)info;
    const EventSpec& spec = parsed.net.process(p).event;
    scripts.emplace(
        p, SporadicScript::random(spec.burst, spec.period, horizon, ++salt));
  }
  runtime::RunOptions opts;
  opts.frames = args.frames;
  opts.overhead = args.overhead;
  const RunResult run = runtime::make_runtime(args.runtime)
                            ->run(parsed.net, derived, report.search.best.schedule,
                                  opts, {}, scripts);
  std::printf("%s\n", run.trace.summary().c_str());
  GanttOptions gopts;
  std::printf("%s", render_gantt(run.trace, args.processors, gopts).c_str());
  return run.met_all_deadlines() ? 0 : 3;
}

}  // namespace tool
}  // namespace fppn
