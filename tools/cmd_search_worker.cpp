#include <cstdio>

#include "commands.hpp"
#include "engine/engine.hpp"

namespace fppn {
namespace tool {

/// One shard of a sharded search: recomputes the deterministic plan from
/// the same inputs the orchestrator used and publishes this shard's
/// results. Quiet on success (the orchestrator owns the report); errors
/// go to stderr.
int cmd_search_worker(const Args& args) {
  if (args.shards < 1 || !args.shard_dir.has_value() || args.shard_index < 0 ||
      args.shard_index >= args.shards) {
    std::fprintf(stderr,
                 "fppn_tool: search-worker requires --shards N, --shard-index I "
                 "(0 <= I < N) and --shard-dir D\n");
    return 2;
  }
  engine::SolveRequest request = solve_request(args);
  request.make_shard_launcher = nullptr;  // this process IS the worker
  engine::Engine engine;
  engine.solve_shard(request, args.shard_index);
  return 0;
}

}  // namespace tool
}  // namespace fppn
