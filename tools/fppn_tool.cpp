// fppn_tool — the command line front end of the toolchain: parse a
// textual FPPN description, validate it, derive the task graph, compute
// schedules and simulate the online policy. This is the analogue of the
// paper's publicly released code-generation tool [10] for this library.
//
// Scheduling goes through the strategy registry (pass any registered name
// to --strategy; `fppn_tool --help` lists them) and --optimize runs the
// parallel multi-strategy/multi-seed search. Execution goes through the
// runtime registry (--runtime vm|threads). `--shards N` splits the
// schedule search across N `fppn_tool search-worker` processes
// (sched::sharded_search) and merges the bit-identical winner of the
// single-process run.
//
// Usage:
//   fppn_tool check     <file>
//   fppn_tool taskgraph <file> [--dot] [--wcet C] [--unfold U]
//   fppn_tool schedule  <file> -m N [--strategy NAME] [--optimize]
//                       [--jobs W] [--seed S] [--wcet C] [--unfold U]
//                       [--cache-dir D] [--cache-max-entries N] [--no-cache]
//                       [--shards N [--shard-dir D]] [--dot|--gantt]
//   fppn_tool search-worker <file> -m N --shards N --shard-index I
//                       --shard-dir D [schedule options]
//   fppn_tool simulate  <file> -m N [--runtime NAME] [--frames F]
//                       [--overhead F1,Fn] [--wcet C] [--seed S]
//                       [--cache-dir D] [--cache-max-entries N] [--no-cache]
//   fppn_tool cache-gc  --cache-dir D [--cache-max-entries N]
//   fppn_tool roundtrip <file>         # parse and re-emit the description
//   fppn_tool fuzz      [--seeds N] [--seed S] [--families LIST] [-m N]
//                       [--repro-dir D] [--replay FILE] [--shrink-steps K]
//                       [--inject-bug]
//
// `fuzz` runs the differential loop of gen/fuzz.*: generated scenarios,
// reference-vs-toggled search comparison, TA-oracle and policy-trace
// cross-checks; mismatches are shrunk and written to --repro-dir as
// replayable `.fppn` files. Exit code 4 = at least one mismatch.
//
// --cache-dir enables the on-disk schedule cache (sched::ScheduleCache):
// repeated searches over the same graph are answered from disk instead of
// re-evaluated, with the bit-identical winner, and cached feasible
// schedules warm-start the local search (strict-improvement overlay: a
// warm rerun matches the cold winner or beats it, never anything else).
// A bad cache path is a hard error (exit 1), never a silent miss. Shard
// worker processes share the same cache directory, so sharded searches
// are warm-cache friendly too. --cache-max-entries bounds the directory
// (LRU-style eviction after every store); `cache-gc` runs the same
// reconcile+evict pass on demand.
//
// Every numeric flag is parsed with a checked helper: a non-integer or
// out-of-range value exits 2 with an actionable message — never a raw
// `stoi`/`stoll` exception.
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "gen/fuzz.hpp"
#include "io/atomic_file.hpp"
#include "io/text_format.hpp"
#include "runtime/runtime.hpp"
#include "sched/parallel_search.hpp"
#include "sched/process_launcher.hpp"
#include "sched/registry.hpp"
#include "sched/sharded_search.hpp"
#include "sim/gantt.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/derivation.hpp"

using namespace fppn;

namespace {

namespace fs = std::filesystem;

/// argv[0], kept for re-spawning shard workers when /proc/self/exe is
/// unavailable.
std::string g_argv0;

struct Args {
  std::string command;
  std::string file;
  std::int64_t processors = 2;
  std::int64_t frames = 1;
  int unfold = 1;
  int jobs = 0;  ///< parallel-search workers; 0 = hardware concurrency
  int shards = 0;       ///< >0: split the schedule search across processes
  int shard_index = -1; ///< search-worker only: which shard this process owns
  std::uint64_t seed = 1;
  std::size_t cache_max_entries = 0;  ///< 0 = unbounded cache directory
  std::optional<Duration> uniform_wcet;
  std::optional<std::string> strategy;
  std::optional<std::string> cache_dir;
  std::optional<std::string> shard_dir;
  std::string runtime = "vm";
  // fuzz subcommand
  std::int64_t fuzz_seeds = 100;
  int shrink_steps = 0;  ///< 0 = the gen::FuzzConfig default
  std::string families;  ///< comma-separated family list; empty = all
  std::string repro_dir;
  std::optional<std::string> replay;
  bool inject_bug = false;
  bool processors_given = false;
  bool no_cache = false;
  bool no_incremental = false;  ///< escape hatch: from-scratch move scoring
  bool no_visited_set = false;  ///< escape hatch: no cross-worker score memo
  bool optimize = false;
  bool dot = false;
  bool gantt = false;
  OverheadModel overhead;
};

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: fppn_tool "
               "<check|taskgraph|schedule|search-worker|simulate|roundtrip> "
               "<file> [options]\n"
               "       fppn_tool cache-gc --cache-dir D [--cache-max-entries N]\n"
               "       fppn_tool fuzz [--seeds N] [--seed S] [--families LIST]\n"
               "                      [-m N] [--repro-dir D] [--replay FILE]\n"
               "                      [--shrink-steps K] [--inject-bug]\n"
               "options:\n"
               "  -m N             processor count (schedule/simulate)\n"
               "  --strategy NAME  scheduling strategy (schedule)\n"
               "  --optimize       parallel multi-strategy/multi-seed search\n"
               "  --jobs W         parallel-search worker threads (0 = auto)\n"
               "  --shards N       split the search across N worker processes\n"
               "                   (schedule); same winner as the in-process run\n"
               "  --shard-dir D    directory the shards publish into; with all\n"
               "                   manifests pre-populated (e.g. from other\n"
               "                   machines) no workers are spawned, only merged\n"
               "  --shard-index I  shard owned by this process (search-worker)\n"
               "  --runtime NAME   execution backend (simulate)\n"
               "  --frames F       schedule-frame repetitions (simulate)\n"
               "  --overhead F1,Fn frame overhead model (simulate)\n"
               "  --wcet C         uniform WCET override\n"
               "  --unfold U       unfolding factor for the derivation\n"
               "  --seed S         RNG seed (search/sporadic scripts)\n"
               "  --cache-dir D    on-disk schedule cache (schedule/simulate);\n"
               "                   D is created when its parent exists, else error\n"
               "  --cache-max-entries N  bound the cache directory to N entries\n"
               "                   (LRU-style eviction; also the cache-gc bound)\n"
               "  --no-cache       disable the schedule cache even with --cache-dir\n"
               "  --no-incremental score local-search moves from scratch instead of\n"
               "                   resuming from checkpoints (bit-identical winner)\n"
               "  --no-visited-set disable the shared order-score memo across search\n"
               "                   workers (bit-identical winner)\n"
               "  --dot | --gantt  graph/schedule rendering\n"
               "  --seeds N        fuzz: scenario count (default 100)\n"
               "  --families LIST  fuzz: comma-separated scenario families\n"
               "  --repro-dir D    fuzz: write shrunk mismatch repros into D\n"
               "  --replay FILE    fuzz: re-run the checks on a repro file\n"
               "  --shrink-steps K fuzz: shrink budget per mismatch\n"
               "  --inject-bug     fuzz: synthetic mismatch (shrinker self-test)\n");
  std::fprintf(out, "strategies:\n");
  for (const std::string& name : sched::StrategyRegistry::global().names()) {
    const auto strategy = sched::StrategyRegistry::global().create(name);
    std::fprintf(out, "  %-20s %s\n", name.c_str(), strategy->description().c_str());
  }
  std::fprintf(out, "runtimes:\n");
  for (const std::string& name : runtime::RuntimeRegistry::global().names()) {
    const auto backend = runtime::make_runtime(name);
    std::fprintf(out, "  %-20s %s\n", name.c_str(), backend->description().c_str());
  }
}

[[noreturn]] void usage() {
  print_usage(stderr);
  std::exit(2);
}

constexpr std::int64_t kNoMax = std::numeric_limits<std::int64_t>::max();

/// Checked integer parse for a numeric flag: the whole value must be a
/// base-10 integer within [min_value, max_value]. Anything else reports
/// an actionable message naming the flag and exits 2 (the documented
/// bad-usage code) — never a raw stoi/stoll exception. With max_value
/// left at kNoMax the range message reads "must be >= N".
std::int64_t parse_int_flag(const char* flag, const std::string& value,
                            std::int64_t min_value, std::int64_t max_value = kNoMax) {
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size()) {
    std::fprintf(stderr, "fppn_tool: expected an integer for %s, got '%s'\n", flag,
                 value.c_str());
    std::exit(2);
  }
  if (errno == ERANGE) {
    std::fprintf(stderr, "fppn_tool: %s out of range, got '%s'\n", flag, value.c_str());
    std::exit(2);
  }
  if (parsed < min_value || parsed > max_value) {
    if (max_value == kNoMax) {
      std::fprintf(stderr, "fppn_tool: %s must be >= %lld, got '%s'\n", flag,
                   static_cast<long long>(min_value), value.c_str());
    } else {
      std::fprintf(stderr, "fppn_tool: %s must be in [%lld, %lld], got '%s'\n", flag,
                   static_cast<long long>(min_value),
                   static_cast<long long>(max_value), value.c_str());
    }
    std::exit(2);
  }
  return parsed;
}

/// Checked unsigned parse (for --seed): rejects signs, non-digits and
/// values beyond uint64.
std::uint64_t parse_u64_flag(const char* flag, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const bool has_sign = !value.empty() && (value[0] == '-' || value[0] == '+');
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || has_sign || end != value.c_str() + value.size()) {
    std::fprintf(stderr, "fppn_tool: expected an unsigned integer for %s, got '%s'\n",
                 flag, value.c_str());
    std::exit(2);
  }
  if (errno == ERANGE) {
    std::fprintf(stderr, "fppn_tool: %s out of range, got '%s'\n", flag, value.c_str());
    std::exit(2);
  }
  return parsed;
}

/// Validates a user-supplied registry name; on failure prints the name and
/// the registered list (kind = "strategy" / "runtime") and exits 2.
template <class Registry>
void require_known(const Registry& registry, const char* kind, const char* kind_plural,
                   const std::string& name) {
  if (registry.contains(name)) {
    return;
  }
  std::fprintf(stderr, "fppn_tool: unknown %s '%s'\navailable %s:", kind, name.c_str(),
               kind_plural);
  for (const std::string& n : registry.names()) {
    std::fprintf(stderr, " %s", n.c_str());
  }
  std::fprintf(stderr, "\n");
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_usage(stdout);
      std::exit(0);
    }
  }
  if (argc < 2) {
    usage();
  }
  Args a;
  a.command = argv[1];
  // cache-gc operates on a cache directory and fuzz on generated
  // scenarios (or --replay FILE), not a network file positional.
  const bool takes_file = a.command != "cache-gc" && a.command != "fuzz";
  if (takes_file) {
    if (argc < 3) {
      usage();
    }
    a.file = argv[2];
  }
  for (int i = takes_file ? 3 : 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
      }
      return argv[++i];
    };
    if (arg == "-m") {
      // Nonsensical values fail here at the CLI, not deep in the engine.
      a.processors = parse_int_flag("-m", next(), 1);
      a.processors_given = true;
    } else if (arg == "--seeds") {
      a.fuzz_seeds = parse_int_flag("--seeds", next(), 1);
    } else if (arg == "--families") {
      a.families = next();
    } else if (arg == "--repro-dir") {
      a.repro_dir = next();
    } else if (arg == "--replay") {
      a.replay = next();
    } else if (arg == "--shrink-steps") {
      a.shrink_steps = static_cast<int>(parse_int_flag(
          "--shrink-steps", next(), 1, std::numeric_limits<int>::max()));
    } else if (arg == "--inject-bug") {
      a.inject_bug = true;
    } else if (arg == "--frames") {
      a.frames = parse_int_flag("--frames", next(), 0);
    } else if (arg == "--unfold") {
      a.unfold = static_cast<int>(
          parse_int_flag("--unfold", next(), 1, std::numeric_limits<int>::max()));
    } else if (arg == "--jobs") {
      a.jobs = static_cast<int>(
          parse_int_flag("--jobs", next(), 0, std::numeric_limits<int>::max()));
    } else if (arg == "--shards") {
      a.shards = static_cast<int>(
          parse_int_flag("--shards", next(), 1, std::numeric_limits<int>::max()));
    } else if (arg == "--shard-index") {
      a.shard_index = static_cast<int>(
          parse_int_flag("--shard-index", next(), 0, std::numeric_limits<int>::max()));
    } else if (arg == "--shard-dir") {
      a.shard_dir = next();
    } else if (arg == "--seed") {
      a.seed = parse_u64_flag("--seed", next());
    } else if (arg == "--wcet") {
      a.uniform_wcet = io::parse_duration(next());
    } else if (arg == "--strategy" || arg == "--heuristic") {
      // --heuristic is the pre-registry spelling, kept as an alias.
      a.strategy = next();
      require_known(sched::StrategyRegistry::global(), "strategy", "strategies",
                    *a.strategy);
    } else if (arg == "--runtime") {
      a.runtime = next();
      require_known(runtime::RuntimeRegistry::global(), "runtime", "runtimes",
                    a.runtime);
    } else if (arg == "--cache-dir") {
      a.cache_dir = next();
    } else if (arg == "--cache-max-entries") {
      a.cache_max_entries = static_cast<std::size_t>(parse_int_flag(
          "--cache-max-entries", next(), 1, std::numeric_limits<int>::max()));
    } else if (arg == "--no-cache") {
      a.no_cache = true;
    } else if (arg == "--no-incremental") {
      a.no_incremental = true;
    } else if (arg == "--no-visited-set") {
      a.no_visited_set = true;
    } else if (arg == "--optimize") {
      a.optimize = true;
    } else if (arg == "--dot") {
      a.dot = true;
    } else if (arg == "--gantt") {
      a.gantt = true;
    } else if (arg == "--overhead") {
      const std::string spec = next();
      const auto comma = spec.find(',');
      if (comma == std::string::npos) {
        usage();
      }
      a.overhead.first_frame = io::parse_duration(spec.substr(0, comma));
      a.overhead.other_frames = io::parse_duration(spec.substr(comma + 1));
    } else {
      usage();
    }
  }
  return a;
}

io::ParsedNetwork load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fppn_tool: cannot open '%s'\n", path.c_str());
    std::exit(1);
  }
  return io::parse_network(in);
}

WcetMap resolve_wcets(const io::ParsedNetwork& parsed, const Args& args) {
  if (args.uniform_wcet.has_value()) {
    WcetMap map;
    for (std::size_t i = 0; i < parsed.net.process_count(); ++i) {
      map.emplace(ProcessId{i}, *args.uniform_wcet);
    }
    return map;
  }
  if (!parsed.wcets_complete) {
    std::fprintf(stderr,
                 "fppn_tool: network lacks wcet= on some processes; pass --wcet C\n");
    std::exit(1);
  }
  return parsed.wcets;
}

DerivedTaskGraph derive(const io::ParsedNetwork& parsed, const Args& args) {
  DerivationOptions opts;
  opts.unfolding = args.unfold;
  return derive_task_graph(parsed.net, resolve_wcets(parsed, args), opts);
}

/// Search options shared by the in-process path, the sharded orchestrator
/// and the search-worker subcommand — one source of truth, so every path
/// enumerates the identical candidate matrix. A plain (non-optimizing)
/// call keeps iterative strategies on a small budget so it stays quick.
sched::ParallelSearchOptions build_search_options(const Args& args) {
  sched::ParallelSearchOptions opts;
  opts.processors = args.processors;
  opts.workers = args.jobs;
  opts.base_seed = args.seed;
  if (args.strategy.has_value()) {
    opts.strategies = {*args.strategy};
  }
  if (args.optimize) {
    opts.seeds_per_strategy = 3;
    opts.max_iterations = 2000;
    opts.restarts = 2;
  } else {
    opts.seeds_per_strategy = 1;
    opts.max_iterations = 400;
    opts.restarts = 1;
  }
  // Warm-start whenever a cache is attached: the overlay only ever
  // matches or strictly improves the winner, so it is always safe on.
  opts.warm_start = true;
  opts.use_incremental = !args.no_incremental;
  opts.use_visited_set = !args.no_visited_set;
  return opts;
}

/// The engine's default scheduling path: parallel search over the whole
/// registry, backed by the on-disk schedule cache when --cache-dir is
/// given (and --no-cache is not).
sched::ParallelSearchResult search_schedule(const TaskGraph& tg, const Args& args) {
  sched::ParallelSearchOptions opts = build_search_options(args);
  std::optional<sched::ScheduleCache> cache;
  if (args.cache_dir.has_value() && !args.no_cache) {
    // Throws on a bad path: loud, not a silent miss.
    cache.emplace(*args.cache_dir, args.cache_max_entries);
    opts.cache = &*cache;
  }
  const sched::ParallelSearchResult result = sched::parallel_search(tg, opts);
  if (cache.has_value()) {
    const sched::CacheStats stats = cache->stats();
    std::printf("cache '%s': %zu hit(s), %zu miss(es), %zu store(s), %zu eviction(s)\n",
                cache->directory().c_str(), stats.hits, stats.misses, stats.stores,
                stats.evictions);
  }
  return result;
}

/// Full path of this executable, for re-spawning shard workers.
std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return g_argv0;
}

/// Command line of one shard worker: the search-relevant flags of this
/// invocation plus the shard coordinates. Workers share --cache-dir, so a
/// sharded search warms (and is warmed by) the same cache as the
/// in-process run.
std::vector<std::string> worker_argv(const Args& args, const std::string& shard_dir,
                                     int shard_index) {
  std::vector<std::string> argv = {
      self_exe_path(), "search-worker", args.file,
      "-m", std::to_string(args.processors),
      "--shards", std::to_string(args.shards),
      "--shard-index", std::to_string(shard_index),
      "--shard-dir", shard_dir,
      "--seed", std::to_string(args.seed),
      "--unfold", std::to_string(args.unfold),
      "--jobs", std::to_string(args.jobs)};
  if (args.strategy.has_value()) {
    argv.push_back("--strategy");
    argv.push_back(*args.strategy);
  }
  if (args.optimize) {
    argv.push_back("--optimize");
  }
  if (args.no_incremental) {
    argv.push_back("--no-incremental");
  }
  if (args.no_visited_set) {
    argv.push_back("--no-visited-set");
  }
  if (args.uniform_wcet.has_value()) {
    argv.push_back("--wcet");
    argv.push_back(args.uniform_wcet->to_string());
  }
  if (args.cache_dir.has_value() && !args.no_cache) {
    argv.push_back("--cache-dir");
    argv.push_back(*args.cache_dir);
    if (args.cache_max_entries > 0) {
      argv.push_back("--cache-max-entries");
      argv.push_back(std::to_string(args.cache_max_entries));
    }
  }
  return argv;
}

/// The sharded scheduling path: spawn one search-worker process per shard
/// through sched::process_shard_launcher (or consume a pre-populated
/// --shard-dir) and merge. Same winner as search_schedule, bit for bit.
/// Temp shard-dir creation throws (io::make_temp_directory), so every
/// error path — including a failed directory — unwinds through the same
/// cleanup/catch chain instead of exiting mid-flight.
sched::ParallelSearchResult sharded_schedule(const TaskGraph& tg, const Args& args) {
  const bool private_dir = !args.shard_dir.has_value();
  const std::string shard_dir =
      private_dir ? io::make_temp_directory("fppn-shards-") : *args.shard_dir;
  sched::ShardedSearchOptions sharding;
  sharding.shards = args.shards;
  sharding.shard_dir = shard_dir;
  sharding.launcher = sched::process_shard_launcher(
      [&args, shard_dir](int shard) { return worker_argv(args, shard_dir, shard); });
  sched::ParallelSearchOptions opts = build_search_options(args);
  // The orchestrator attaches the cache too: the warm-start overlay runs
  // here, after the plan-pure merge (workers keep their own instances).
  std::optional<sched::ScheduleCache> cache;
  if (args.cache_dir.has_value() && !args.no_cache) {
    cache.emplace(*args.cache_dir, args.cache_max_entries);
    opts.cache = &*cache;
  }
  try {
    const sched::ParallelSearchResult result = sched::sharded_search(tg, opts, sharding);
    if (private_dir) {
      std::error_code ec;
      fs::remove_all(shard_dir, ec);
    }
    return result;
  } catch (...) {
    if (private_dir) {
      std::error_code ec;
      fs::remove_all(shard_dir, ec);
    }
    throw;
  }
}

int cmd_check(const Args& args) {
  const auto parsed = load(args.file);
  std::printf("ok: %zu processes, %zu channels\n", parsed.net.process_count(),
              parsed.net.channel_count());
  std::string why;
  if (parsed.net.in_schedulable_subclass(&why)) {
    std::printf("schedulable subclass: yes; hyperperiod %s ms\n",
                parsed.net.hyperperiod().to_string().c_str());
  } else {
    std::printf("schedulable subclass: NO (%s)\n", why.c_str());
  }
  return 0;
}

int cmd_taskgraph(const Args& args) {
  const auto parsed = load(args.file);
  const auto derived = derive(parsed, args);
  if (args.dot) {
    std::printf("%s", derived.graph.to_dot().c_str());
    return 0;
  }
  std::printf("hyperperiod %s ms, %zu jobs, %zu edges (%zu removed by reduction)\n",
              derived.hyperperiod.to_string().c_str(), derived.graph.job_count(),
              derived.graph.edge_count(), derived.edges_removed);
  const LoadResult load_result = task_graph_load(derived.graph);
  std::printf("load %s (~%.4f) => >= %lld processor(s)\n",
              load_result.load.to_string().c_str(), load_result.load_value(),
              static_cast<long long>(load_result.min_processors()));
  std::printf("%s", derived.graph.to_table().c_str());
  return 0;
}

int cmd_schedule(const Args& args) {
  if (args.shard_dir.has_value() && args.shards < 1) {
    // Silently recomputing in-process would drop shipped shard results.
    std::fprintf(stderr, "fppn_tool: --shard-dir requires --shards N\n");
    return 2;
  }
  const auto parsed = load(args.file);
  const auto derived = derive(parsed, args);
  const sched::ParallelSearchResult result = args.shards > 0
                                                 ? sharded_schedule(derived.graph, args)
                                                 : search_schedule(derived.graph, args);
  std::printf("%s on %lld processor(s): %s, makespan %s ms\n",
              result.best.detail.c_str(), static_cast<long long>(args.processors),
              result.best.feasible ? "FEASIBLE" : "infeasible",
              result.best.makespan.to_string().c_str());
  const std::string workers_phrase =
      args.shards > 0 ? "in " + std::to_string(result.workers_used) + " shard process(es)"
                      : "on " + std::to_string(result.workers_used) + " worker(s)";
  std::printf(
      "(searched %zu candidate(s), %zu evaluated + %zu cached, %s; "
      "winner: %s, seed %llu)\n",
      result.candidates, result.evaluated, result.cache_hits, workers_phrase.c_str(),
      result.best.strategy.c_str(), static_cast<unsigned long long>(result.seed));
  if (result.warm_candidates > 0) {
    std::printf("warm-start overlay: %zu cached start(s), %zu candidate(s)%s\n",
                result.warm_starts, result.warm_candidates,
                result.warm_start_won ? ", improved the plan winner" : "");
  }
  // Evaluation accounting of the fresh candidate runs (zero when every
  // candidate came from the cache or shard processes did the evaluating).
  if (result.evals_full + result.evals_incremental + result.visited_skips > 0) {
    std::printf(
        "evaluations: %llu full, %llu incremental (%llu spliced), "
        "%llu visited-set skip(s)\n",
        static_cast<unsigned long long>(result.evals_full),
        static_cast<unsigned long long>(result.evals_incremental),
        static_cast<unsigned long long>(result.evals_spliced),
        static_cast<unsigned long long>(result.visited_skips));
  }
  if (!result.best.feasible) {
    const FeasibilityReport report =
        result.best.schedule.check_feasibility(derived.graph);
    std::printf("%s\n", report.to_string(derived.graph).c_str());
  }
  if (args.gantt) {
    std::printf("%s", result.best.schedule.to_gantt(derived.graph, 100).c_str());
  }
  return result.best.feasible ? 0 : 3;
}

/// One shard of a sharded search: recomputes the deterministic plan from
/// the same inputs the orchestrator used and publishes this shard's
/// results. Quiet on success (the orchestrator owns the report); errors
/// go to stderr.
int cmd_search_worker(const Args& args) {
  if (args.shards < 1 || !args.shard_dir.has_value() || args.shard_index < 0 ||
      args.shard_index >= args.shards) {
    std::fprintf(stderr,
                 "fppn_tool: search-worker requires --shards N, --shard-index I "
                 "(0 <= I < N) and --shard-dir D\n");
    return 2;
  }
  const auto parsed = load(args.file);
  const auto derived = derive(parsed, args);
  sched::ParallelSearchOptions opts = build_search_options(args);
  std::optional<sched::ScheduleCache> cache;
  if (args.cache_dir.has_value() && !args.no_cache) {
    cache.emplace(*args.cache_dir, args.cache_max_entries);
    opts.cache = &*cache;
  }
  const sched::ShardPlan plan =
      sched::make_shard_plan(derived.graph, opts, args.shards);
  (void)sched::evaluate_shard(derived.graph, opts, plan, args.shard_index,
                              *args.shard_dir);
  return 0;
}

int cmd_simulate(const Args& args) {
  const auto parsed = load(args.file);
  const auto derived = derive(parsed, args);
  const sched::ParallelSearchResult result = search_schedule(derived.graph, args);
  if (!result.best.feasible) {
    std::printf("warning: no feasible schedule found; simulating anyway\n");
  }
  // Random admissible sporadic scripts over the whole run.
  std::map<ProcessId, SporadicScript> scripts;
  const Time horizon =
      Time() + derived.hyperperiod * Rational(std::max<std::int64_t>(args.frames - 1, 0));
  std::uint64_t salt = args.seed;
  for (const auto& [p, info] : derived.servers) {
    (void)info;
    const EventSpec& spec = parsed.net.process(p).event;
    scripts.emplace(
        p, SporadicScript::random(spec.burst, spec.period, horizon, ++salt));
  }
  runtime::RunOptions opts;
  opts.frames = args.frames;
  opts.overhead = args.overhead;
  const RunResult run = runtime::make_runtime(args.runtime)
                            ->run(parsed.net, derived, result.best.schedule, opts, {},
                                  scripts);
  std::printf("%s\n", run.trace.summary().c_str());
  GanttOptions gopts;
  std::printf("%s", render_gantt(run.trace, args.processors, gopts).c_str());
  return run.met_all_deadlines() ? 0 : 3;
}

int cmd_roundtrip(const Args& args) {
  const auto parsed = load(args.file);
  std::printf("%s", io::write_network(parsed.net, parsed.wcets).c_str());
  return 0;
}

/// Offline cache maintenance: reconcile the recency index with the entry
/// files (rebuilding a missing/corrupt index) and, with
/// --cache-max-entries, evict down to the bound — the CLI face of
/// sched::ScheduleCache::gc().
int cmd_cache_gc(const Args& args) {
  if (!args.cache_dir.has_value()) {
    std::fprintf(stderr, "fppn_tool: cache-gc requires --cache-dir D\n");
    return 2;
  }
  sched::ScheduleCache cache(*args.cache_dir, args.cache_max_entries);
  const sched::CacheGcStats gc = cache.gc();
  std::printf("cache-gc '%s': %zu kept, %zu evicted%s%s\n", cache.directory().c_str(),
              gc.kept, gc.evicted, gc.index_rebuilt ? ", index rebuilt" : "",
              args.cache_max_entries == 0 ? " (no bound given: index maintenance only)"
                                          : "");
  return 0;
}

void print_mismatch(const gen::FuzzMismatch& m, const char* repro_path) {
  std::fprintf(stderr,
               "fppn_tool: fuzz MISMATCH [%s] (processors=%lld incremental=%d "
               "visited=%d): %s\n",
               m.check.c_str(), static_cast<long long>(m.processors),
               m.toggles.incremental ? 1 : 0, m.toggles.visited_set ? 1 : 0,
               m.detail.c_str());
  if (repro_path != nullptr) {
    std::fprintf(stderr, "fppn_tool: repro written to %s\n", repro_path);
  }
}

/// The differential fuzz loop (gen/fuzz.*). Exit codes: 0 all checks
/// agree, 1 hard error, 2 bad usage, 4 at least one mismatch detected.
int cmd_fuzz(const Args& args) {
  gen::FuzzConfig check;
  check.processors = args.processors_given ? args.processors : 0;
  check.inject_bug = args.inject_bug;
  if (args.shrink_steps > 0) {
    check.shrink_limit = args.shrink_steps;
  }

  if (args.replay.has_value()) {
    const gen::ReplayOutcome out = gen::replay_repro(*args.replay, check);
    if (out.verdict.mismatch.has_value()) {
      print_mismatch(*out.verdict.mismatch, nullptr);
      return 4;
    }
    if (!out.expected_check.empty()) {
      std::printf("replay clean: repro no longer triggers check '%s' (%zu jobs)\n",
                  out.expected_check.c_str(), out.verdict.jobs);
    } else {
      std::printf("replay clean: all checks agree (%zu jobs)\n", out.verdict.jobs);
    }
    return 0;
  }

  gen::FuzzRunConfig cfg;
  cfg.base_seed = args.seed;
  cfg.seeds = args.fuzz_seeds;
  cfg.repro_dir = args.repro_dir;
  cfg.check = check;
  if (!args.families.empty()) {
    std::string rest = args.families;
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      const std::string name = rest.substr(0, comma);
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      const auto family = gen::parse_family(name);
      if (!family.has_value()) {
        std::fprintf(stderr, "fppn_tool: unknown family '%s'\navailable families:",
                     name.c_str());
        for (gen::Family f : gen::all_families()) {
          std::fprintf(stderr, " %s", gen::to_string(f).c_str());
        }
        std::fprintf(stderr, "\n");
        return 2;
      }
      cfg.families.push_back(*family);
    }
  }

  const gen::FuzzStats stats = gen::run_fuzz(cfg);
  std::printf("fuzz: %zu scenarios (%zu jobs total), %zu TA-oracle checked, "
              "%zu policy-trace checked, %zu mismatches\n",
              stats.scenarios, stats.jobs, stats.ta_checked, stats.trace_checked,
              stats.mismatches.size());
  for (const auto& [family, count] : stats.per_family) {
    std::printf("  %-14s %zu\n", family.c_str(), count);
  }
  for (std::size_t i = 0; i < stats.mismatches.size(); ++i) {
    print_mismatch(stats.mismatches[i],
                   i < stats.repro_paths.size() ? stats.repro_paths[i].c_str()
                                                : nullptr);
  }
  return stats.mismatches.empty() ? 0 : 4;
}

}  // namespace

int main(int argc, char** argv) {
  g_argv0 = argc > 0 ? argv[0] : "fppn_tool";
  try {
    const Args args = parse_args(argc, argv);
    if (args.command == "check") {
      return cmd_check(args);
    }
    if (args.command == "taskgraph") {
      return cmd_taskgraph(args);
    }
    if (args.command == "schedule") {
      return cmd_schedule(args);
    }
    if (args.command == "search-worker") {
      return cmd_search_worker(args);
    }
    if (args.command == "simulate") {
      return cmd_simulate(args);
    }
    if (args.command == "cache-gc") {
      return cmd_cache_gc(args);
    }
    if (args.command == "roundtrip") {
      return cmd_roundtrip(args);
    }
    if (args.command == "fuzz") {
      return cmd_fuzz(args);
    }
    usage();
  } catch (const io::ParseError& e) {
    std::fprintf(stderr, "fppn_tool: parse error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fppn_tool: %s\n", e.what());
    return 1;
  }
}
