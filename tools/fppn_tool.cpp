// fppn_tool — the command line front end of the toolchain: parse a
// textual FPPN description, validate it, derive the task graph, compute
// schedules and simulate the online policy. This is the analogue of the
// paper's publicly released code-generation tool [10] for this library.
//
// Usage:
//   fppn_tool check     <file>
//   fppn_tool taskgraph <file> [--dot] [--wcet C] [--unfold U]
//   fppn_tool schedule  <file> -m N [--heuristic alap-edf|b-level|
//                        deadline-monotonic|arrival-order] [--optimize]
//                        [--wcet C] [--unfold U] [--dot|--gantt]
//   fppn_tool simulate  <file> -m N [--frames F] [--overhead F1,Fn]
//                        [--wcet C] [--seed S]
//   fppn_tool roundtrip <file>         # parse and re-emit the description
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "io/text_format.hpp"
#include "runtime/vm_runtime.hpp"
#include "sched/local_search.hpp"
#include "sched/search.hpp"
#include "sim/gantt.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/derivation.hpp"

using namespace fppn;

namespace {

struct Args {
  std::string command;
  std::string file;
  std::int64_t processors = 2;
  std::int64_t frames = 1;
  int unfold = 1;
  std::uint64_t seed = 1;
  std::optional<Duration> uniform_wcet;
  std::optional<PriorityHeuristic> heuristic;
  bool optimize = false;
  bool dot = false;
  bool gantt = false;
  OverheadModel overhead;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: fppn_tool <check|taskgraph|schedule|simulate|roundtrip> "
               "<file> [options]\n  see the header of tools/fppn_tool.cpp\n");
  std::exit(2);
}

std::optional<PriorityHeuristic> heuristic_by_name(const std::string& name) {
  for (const PriorityHeuristic h : all_heuristics()) {
    if (to_string(h) == name) {
      return h;
    }
  }
  return std::nullopt;
}

Args parse_args(int argc, char** argv) {
  if (argc < 3) {
    usage();
  }
  Args a;
  a.command = argv[1];
  a.file = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
      }
      return argv[++i];
    };
    if (arg == "-m") {
      a.processors = std::stoll(next());
    } else if (arg == "--frames") {
      a.frames = std::stoll(next());
    } else if (arg == "--unfold") {
      a.unfold = std::stoi(next());
    } else if (arg == "--seed") {
      a.seed = std::stoull(next());
    } else if (arg == "--wcet") {
      a.uniform_wcet = io::parse_duration(next());
    } else if (arg == "--heuristic") {
      a.heuristic = heuristic_by_name(next());
      if (!a.heuristic.has_value()) {
        usage();
      }
    } else if (arg == "--optimize") {
      a.optimize = true;
    } else if (arg == "--dot") {
      a.dot = true;
    } else if (arg == "--gantt") {
      a.gantt = true;
    } else if (arg == "--overhead") {
      const std::string spec = next();
      const auto comma = spec.find(',');
      if (comma == std::string::npos) {
        usage();
      }
      a.overhead.first_frame = io::parse_duration(spec.substr(0, comma));
      a.overhead.other_frames = io::parse_duration(spec.substr(comma + 1));
    } else {
      usage();
    }
  }
  return a;
}

io::ParsedNetwork load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fppn_tool: cannot open '%s'\n", path.c_str());
    std::exit(1);
  }
  return io::parse_network(in);
}

WcetMap resolve_wcets(const io::ParsedNetwork& parsed, const Args& args) {
  if (args.uniform_wcet.has_value()) {
    WcetMap map;
    for (std::size_t i = 0; i < parsed.net.process_count(); ++i) {
      map.emplace(ProcessId{i}, *args.uniform_wcet);
    }
    return map;
  }
  if (!parsed.wcets_complete) {
    std::fprintf(stderr,
                 "fppn_tool: network lacks wcet= on some processes; pass --wcet C\n");
    std::exit(1);
  }
  return parsed.wcets;
}

DerivedTaskGraph derive(const io::ParsedNetwork& parsed, const Args& args) {
  DerivationOptions opts;
  opts.unfolding = args.unfold;
  return derive_task_graph(parsed.net, resolve_wcets(parsed, args), opts);
}

int cmd_check(const Args& args) {
  const auto parsed = load(args.file);
  std::printf("ok: %zu processes, %zu channels\n", parsed.net.process_count(),
              parsed.net.channel_count());
  std::string why;
  if (parsed.net.in_schedulable_subclass(&why)) {
    std::printf("schedulable subclass: yes; hyperperiod %s ms\n",
                parsed.net.hyperperiod().to_string().c_str());
  } else {
    std::printf("schedulable subclass: NO (%s)\n", why.c_str());
  }
  return 0;
}

int cmd_taskgraph(const Args& args) {
  const auto parsed = load(args.file);
  const auto derived = derive(parsed, args);
  if (args.dot) {
    std::printf("%s", derived.graph.to_dot().c_str());
    return 0;
  }
  std::printf("hyperperiod %s ms, %zu jobs, %zu edges (%zu removed by reduction)\n",
              derived.hyperperiod.to_string().c_str(), derived.graph.job_count(),
              derived.graph.edge_count(), derived.edges_removed);
  const LoadResult load_result = task_graph_load(derived.graph);
  std::printf("load %s (~%.4f) => >= %lld processor(s)\n",
              load_result.load.to_string().c_str(), load_result.load_value(),
              static_cast<long long>(load_result.min_processors()));
  std::printf("%s", derived.graph.to_table().c_str());
  return 0;
}

int cmd_schedule(const Args& args) {
  const auto parsed = load(args.file);
  const auto derived = derive(parsed, args);
  StaticSchedule schedule;
  std::string how;
  if (args.optimize) {
    LocalSearchOptions opts;
    opts.processors = args.processors;
    opts.seed = args.seed;
    LocalSearchResult result = optimize_priority(derived.graph, opts);
    schedule = std::move(result.schedule);
    how = "local search from " + to_string(result.start_heuristic) + ", " +
          std::to_string(result.iterations_used) + " iterations";
  } else if (args.heuristic.has_value()) {
    schedule = list_schedule(derived.graph, *args.heuristic, args.processors);
    how = to_string(*args.heuristic);
  } else {
    ScheduleAttempt attempt = best_schedule(derived.graph, args.processors);
    schedule = std::move(attempt.schedule);
    how = "best heuristic: " + to_string(attempt.heuristic);
  }
  const FeasibilityReport report = schedule.check_feasibility(derived.graph);
  std::printf("%s on %lld processor(s): %s, makespan %s ms\n", how.c_str(),
              static_cast<long long>(args.processors),
              report.feasible() ? "FEASIBLE" : "infeasible",
              schedule.makespan(derived.graph).to_string().c_str());
  if (!report.feasible()) {
    std::printf("%s\n", report.to_string(derived.graph).c_str());
  }
  if (args.gantt) {
    std::printf("%s", schedule.to_gantt(derived.graph, 100).c_str());
  }
  return report.feasible() ? 0 : 3;
}

int cmd_simulate(const Args& args) {
  const auto parsed = load(args.file);
  const auto derived = derive(parsed, args);
  const ScheduleAttempt attempt = best_schedule(derived.graph, args.processors);
  if (!attempt.feasible) {
    std::printf("warning: no feasible schedule found; simulating anyway\n");
  }
  // Random admissible sporadic scripts over the whole run.
  std::map<ProcessId, SporadicScript> scripts;
  const Time horizon =
      Time() + derived.hyperperiod * Rational(std::max<std::int64_t>(args.frames - 1, 0));
  std::uint64_t salt = args.seed;
  for (const auto& [p, info] : derived.servers) {
    (void)info;
    const EventSpec& spec = parsed.net.process(p).event;
    scripts.emplace(
        p, SporadicScript::random(spec.burst, spec.period, horizon, ++salt));
  }
  VmRunOptions opts;
  opts.frames = args.frames;
  opts.overhead = args.overhead;
  const RunResult run =
      run_static_order_vm(parsed.net, derived, attempt.schedule, opts, {}, scripts);
  std::printf("%s\n", run.trace.summary().c_str());
  GanttOptions gopts;
  std::printf("%s", render_gantt(run.trace, args.processors, gopts).c_str());
  return run.met_all_deadlines() ? 0 : 3;
}

int cmd_roundtrip(const Args& args) {
  const auto parsed = load(args.file);
  std::printf("%s", io::write_network(parsed.net, parsed.wcets).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.command == "check") {
      return cmd_check(args);
    }
    if (args.command == "taskgraph") {
      return cmd_taskgraph(args);
    }
    if (args.command == "schedule") {
      return cmd_schedule(args);
    }
    if (args.command == "simulate") {
      return cmd_simulate(args);
    }
    if (args.command == "roundtrip") {
      return cmd_roundtrip(args);
    }
    usage();
  } catch (const io::ParseError& e) {
    std::fprintf(stderr, "fppn_tool: parse error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fppn_tool: %s\n", e.what());
    return 1;
  }
}
