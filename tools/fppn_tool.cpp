// fppn_tool — the command line front end of the toolchain: parse a
// textual FPPN description, validate it, derive the task graph, compute
// schedules and simulate the online policy. This is the analogue of the
// paper's publicly released code-generation tool [10] for this library.
//
// This file is only the dispatcher. Flag parsing and the Args ->
// engine::SolveRequest translation live in tools/tool_common.*; each
// subcommand is one thin module in tools/cmd_*.cpp (declared in
// tools/commands.hpp); all scheduling behavior — presets, cache
// attachment, sharding, the determinism contract — lives in src/engine,
// shared with fppn_serve, the benches and the fuzz loop.
//
// Scheduling goes through the strategy registry (pass any registered name
// to --strategy; `fppn_tool --help` lists them) and --optimize runs the
// parallel multi-strategy/multi-seed search. Execution goes through the
// runtime registry (--runtime vm|threads). `--shards N` splits the
// schedule search across N `fppn_tool search-worker` processes
// (sched::sharded_search) and merges the bit-identical winner of the
// single-process run.
//
// Usage:
//   fppn_tool check     <file>
//   fppn_tool taskgraph <file> [--dot] [--wcet C] [--unfold U]
//   fppn_tool schedule  <file> -m N [--strategy NAME] [--optimize]
//                       [--jobs W] [--seed S] [--wcet C] [--unfold U]
//                       [--cache-dir D] [--cache-max-entries N]
//                       [--cache-max-bytes B] [--no-cache]
//                       [--shards N [--shard-dir D]] [--dot|--gantt]
//   fppn_tool search-worker <file> -m N --shards N --shard-index I
//                       --shard-dir D [schedule options]
//   fppn_tool simulate  <file> -m N [--runtime NAME] [--frames F]
//                       [--overhead F1,Fn] [--wcet C] [--seed S]
//                       [--cache-dir D] [--cache-max-entries N] [--no-cache]
//   fppn_tool cache-gc  --cache-dir D [--cache-max-entries N]
//                       [--cache-max-bytes B]
//   fppn_tool roundtrip <file>         # parse and re-emit the description
//   fppn_tool fuzz      [--seeds N] [--seed S] [--families LIST] [-m N]
//                       [--repro-dir D] [--replay FILE] [--shrink-steps K]
//                       [--inject-bug]
//
// `fuzz` runs the differential loop of gen/fuzz.*: generated scenarios,
// reference-vs-toggled search comparison, TA-oracle and policy-trace
// cross-checks; mismatches are shrunk and written to --repro-dir as
// replayable `.fppn` files. Exit code 4 = at least one mismatch.
//
// --cache-dir enables the on-disk schedule cache (sched::ScheduleCache):
// repeated searches over the same graph are answered from disk instead of
// re-evaluated, with the bit-identical winner, and cached feasible
// schedules warm-start the local search (strict-improvement overlay: a
// warm rerun matches the cold winner or beats it, never anything else).
// A bad cache path is a hard error (exit 1), never a silent miss. Shard
// worker processes share the same cache directory, so sharded searches
// are warm-cache friendly too. --cache-max-entries bounds the directory's
// entry count and --cache-max-bytes its total entry-file size (LRU-style
// eviction after every store); `cache-gc` runs the same reconcile+evict
// pass on demand.
//
// Every numeric flag is parsed with a checked helper: a non-integer or
// out-of-range value exits 2 with an actionable message — never a raw
// `stoi`/`stoll` exception.
#include <cstdio>

#include "commands.hpp"
#include "io/text_format.hpp"

using namespace fppn;
using namespace fppn::tool;

int main(int argc, char** argv) {
  g_argv0 = argc > 0 ? argv[0] : "fppn_tool";
  try {
    const Args args = parse_args(argc, argv);
    if (args.command == "check") {
      return cmd_check(args);
    }
    if (args.command == "taskgraph") {
      return cmd_taskgraph(args);
    }
    if (args.command == "schedule") {
      return cmd_schedule(args);
    }
    if (args.command == "search-worker") {
      return cmd_search_worker(args);
    }
    if (args.command == "simulate") {
      return cmd_simulate(args);
    }
    if (args.command == "cache-gc") {
      return cmd_cache_gc(args);
    }
    if (args.command == "roundtrip") {
      return cmd_roundtrip(args);
    }
    if (args.command == "fuzz") {
      return cmd_fuzz(args);
    }
    usage();
  } catch (const io::ParseError& e) {
    std::fprintf(stderr, "fppn_tool: parse error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fppn_tool: %s\n", e.what());
    return 1;
  }
}
