// fppn_tool — the command line front end of the toolchain: parse a
// textual FPPN description, validate it, derive the task graph, compute
// schedules and simulate the online policy. This is the analogue of the
// paper's publicly released code-generation tool [10] for this library.
//
// Scheduling goes through the strategy registry (pass any registered name
// to --strategy; `fppn_tool --help` lists them) and --optimize runs the
// parallel multi-strategy/multi-seed search. Execution goes through the
// runtime registry (--runtime vm|threads).
//
// Usage:
//   fppn_tool check     <file>
//   fppn_tool taskgraph <file> [--dot] [--wcet C] [--unfold U]
//   fppn_tool schedule  <file> -m N [--strategy NAME] [--optimize]
//                       [--jobs W] [--seed S] [--wcet C] [--unfold U]
//                       [--cache-dir D] [--no-cache] [--dot|--gantt]
//   fppn_tool simulate  <file> -m N [--runtime NAME] [--frames F]
//                       [--overhead F1,Fn] [--wcet C] [--seed S]
//                       [--cache-dir D] [--no-cache]
//   fppn_tool roundtrip <file>         # parse and re-emit the description
//
// --cache-dir enables the on-disk schedule cache (sched::ScheduleCache):
// repeated searches over the same graph are answered from disk instead of
// re-evaluated, with the bit-identical winner. A bad cache path is a hard
// error (exit 1), never a silent miss.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "io/text_format.hpp"
#include "runtime/runtime.hpp"
#include "sched/parallel_search.hpp"
#include "sched/registry.hpp"
#include "sim/gantt.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/derivation.hpp"

using namespace fppn;

namespace {

struct Args {
  std::string command;
  std::string file;
  std::int64_t processors = 2;
  std::int64_t frames = 1;
  int unfold = 1;
  int jobs = 0;  ///< parallel-search workers; 0 = hardware concurrency
  std::uint64_t seed = 1;
  std::optional<Duration> uniform_wcet;
  std::optional<std::string> strategy;
  std::optional<std::string> cache_dir;
  std::string runtime = "vm";
  bool no_cache = false;
  bool optimize = false;
  bool dot = false;
  bool gantt = false;
  OverheadModel overhead;
};

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: fppn_tool <check|taskgraph|schedule|simulate|roundtrip> "
               "<file> [options]\n"
               "options:\n"
               "  -m N             processor count (schedule/simulate)\n"
               "  --strategy NAME  scheduling strategy (schedule)\n"
               "  --optimize       parallel multi-strategy/multi-seed search\n"
               "  --jobs W         parallel-search worker threads (0 = auto)\n"
               "  --runtime NAME   execution backend (simulate)\n"
               "  --frames F       schedule-frame repetitions (simulate)\n"
               "  --overhead F1,Fn frame overhead model (simulate)\n"
               "  --wcet C         uniform WCET override\n"
               "  --unfold U       unfolding factor for the derivation\n"
               "  --seed S         RNG seed (search/sporadic scripts)\n"
               "  --cache-dir D    on-disk schedule cache (schedule/simulate);\n"
               "                   D is created when its parent exists, else error\n"
               "  --no-cache       disable the schedule cache even with --cache-dir\n"
               "  --dot | --gantt  graph/schedule rendering\n");
  std::fprintf(out, "strategies:\n");
  for (const std::string& name : sched::StrategyRegistry::global().names()) {
    const auto strategy = sched::StrategyRegistry::global().create(name);
    std::fprintf(out, "  %-20s %s\n", name.c_str(), strategy->description().c_str());
  }
  std::fprintf(out, "runtimes:\n");
  for (const std::string& name : runtime::RuntimeRegistry::global().names()) {
    const auto backend = runtime::make_runtime(name);
    std::fprintf(out, "  %-20s %s\n", name.c_str(), backend->description().c_str());
  }
}

[[noreturn]] void usage() {
  print_usage(stderr);
  std::exit(2);
}

/// Validates a user-supplied registry name; on failure prints the name and
/// the registered list (kind = "strategy" / "runtime") and exits 2.
template <class Registry>
void require_known(const Registry& registry, const char* kind, const char* kind_plural,
                   const std::string& name) {
  if (registry.contains(name)) {
    return;
  }
  std::fprintf(stderr, "fppn_tool: unknown %s '%s'\navailable %s:", kind, name.c_str(),
               kind_plural);
  for (const std::string& n : registry.names()) {
    std::fprintf(stderr, " %s", n.c_str());
  }
  std::fprintf(stderr, "\n");
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_usage(stdout);
      std::exit(0);
    }
  }
  if (argc < 3) {
    usage();
  }
  Args a;
  a.command = argv[1];
  a.file = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
      }
      return argv[++i];
    };
    if (arg == "-m") {
      a.processors = std::stoll(next());
    } else if (arg == "--frames") {
      a.frames = std::stoll(next());
    } else if (arg == "--unfold") {
      a.unfold = std::stoi(next());
    } else if (arg == "--jobs") {
      a.jobs = std::stoi(next());
    } else if (arg == "--seed") {
      a.seed = std::stoull(next());
    } else if (arg == "--wcet") {
      a.uniform_wcet = io::parse_duration(next());
    } else if (arg == "--strategy" || arg == "--heuristic") {
      // --heuristic is the pre-registry spelling, kept as an alias.
      a.strategy = next();
      require_known(sched::StrategyRegistry::global(), "strategy", "strategies",
                    *a.strategy);
    } else if (arg == "--runtime") {
      a.runtime = next();
      require_known(runtime::RuntimeRegistry::global(), "runtime", "runtimes",
                    a.runtime);
    } else if (arg == "--cache-dir") {
      a.cache_dir = next();
    } else if (arg == "--no-cache") {
      a.no_cache = true;
    } else if (arg == "--optimize") {
      a.optimize = true;
    } else if (arg == "--dot") {
      a.dot = true;
    } else if (arg == "--gantt") {
      a.gantt = true;
    } else if (arg == "--overhead") {
      const std::string spec = next();
      const auto comma = spec.find(',');
      if (comma == std::string::npos) {
        usage();
      }
      a.overhead.first_frame = io::parse_duration(spec.substr(0, comma));
      a.overhead.other_frames = io::parse_duration(spec.substr(comma + 1));
    } else {
      usage();
    }
  }
  return a;
}

io::ParsedNetwork load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fppn_tool: cannot open '%s'\n", path.c_str());
    std::exit(1);
  }
  return io::parse_network(in);
}

WcetMap resolve_wcets(const io::ParsedNetwork& parsed, const Args& args) {
  if (args.uniform_wcet.has_value()) {
    WcetMap map;
    for (std::size_t i = 0; i < parsed.net.process_count(); ++i) {
      map.emplace(ProcessId{i}, *args.uniform_wcet);
    }
    return map;
  }
  if (!parsed.wcets_complete) {
    std::fprintf(stderr,
                 "fppn_tool: network lacks wcet= on some processes; pass --wcet C\n");
    std::exit(1);
  }
  return parsed.wcets;
}

DerivedTaskGraph derive(const io::ParsedNetwork& parsed, const Args& args) {
  DerivationOptions opts;
  opts.unfolding = args.unfold;
  return derive_task_graph(parsed.net, resolve_wcets(parsed, args), opts);
}

/// The engine's default scheduling path: parallel search over the whole
/// registry, backed by the on-disk schedule cache when --cache-dir is
/// given (and --no-cache is not). A plain (non-optimizing) call keeps
/// iterative strategies on a small budget so it stays quick.
sched::ParallelSearchResult search_schedule(const TaskGraph& tg, const Args& args) {
  sched::ParallelSearchOptions opts;
  opts.processors = args.processors;
  opts.workers = args.jobs;
  opts.base_seed = args.seed;
  if (args.strategy.has_value()) {
    opts.strategies = {*args.strategy};
  }
  if (args.optimize) {
    opts.seeds_per_strategy = 3;
    opts.max_iterations = 2000;
    opts.restarts = 2;
  } else {
    opts.seeds_per_strategy = 1;
    opts.max_iterations = 400;
    opts.restarts = 1;
  }
  std::optional<sched::ScheduleCache> cache;
  if (args.cache_dir.has_value() && !args.no_cache) {
    cache.emplace(*args.cache_dir);  // throws on a bad path: loud, not a silent miss
    opts.cache = &*cache;
  }
  const sched::ParallelSearchResult result = sched::parallel_search(tg, opts);
  if (cache.has_value()) {
    const sched::CacheStats stats = cache->stats();
    std::printf("cache '%s': %zu hit(s), %zu miss(es), %zu store(s)\n",
                cache->directory().c_str(), stats.hits, stats.misses, stats.stores);
  }
  return result;
}

int cmd_check(const Args& args) {
  const auto parsed = load(args.file);
  std::printf("ok: %zu processes, %zu channels\n", parsed.net.process_count(),
              parsed.net.channel_count());
  std::string why;
  if (parsed.net.in_schedulable_subclass(&why)) {
    std::printf("schedulable subclass: yes; hyperperiod %s ms\n",
                parsed.net.hyperperiod().to_string().c_str());
  } else {
    std::printf("schedulable subclass: NO (%s)\n", why.c_str());
  }
  return 0;
}

int cmd_taskgraph(const Args& args) {
  const auto parsed = load(args.file);
  const auto derived = derive(parsed, args);
  if (args.dot) {
    std::printf("%s", derived.graph.to_dot().c_str());
    return 0;
  }
  std::printf("hyperperiod %s ms, %zu jobs, %zu edges (%zu removed by reduction)\n",
              derived.hyperperiod.to_string().c_str(), derived.graph.job_count(),
              derived.graph.edge_count(), derived.edges_removed);
  const LoadResult load_result = task_graph_load(derived.graph);
  std::printf("load %s (~%.4f) => >= %lld processor(s)\n",
              load_result.load.to_string().c_str(), load_result.load_value(),
              static_cast<long long>(load_result.min_processors()));
  std::printf("%s", derived.graph.to_table().c_str());
  return 0;
}

int cmd_schedule(const Args& args) {
  const auto parsed = load(args.file);
  const auto derived = derive(parsed, args);
  const sched::ParallelSearchResult result = search_schedule(derived.graph, args);
  std::printf("%s on %lld processor(s): %s, makespan %s ms\n",
              result.best.detail.c_str(), static_cast<long long>(args.processors),
              result.best.feasible ? "FEASIBLE" : "infeasible",
              result.best.makespan.to_string().c_str());
  std::printf(
      "(searched %zu candidate(s), %zu evaluated + %zu cached, on %d worker(s); "
      "winner: %s, seed %llu)\n",
      result.candidates, result.evaluated, result.cache_hits, result.workers_used,
      result.best.strategy.c_str(), static_cast<unsigned long long>(result.seed));
  if (!result.best.feasible) {
    const FeasibilityReport report =
        result.best.schedule.check_feasibility(derived.graph);
    std::printf("%s\n", report.to_string(derived.graph).c_str());
  }
  if (args.gantt) {
    std::printf("%s", result.best.schedule.to_gantt(derived.graph, 100).c_str());
  }
  return result.best.feasible ? 0 : 3;
}

int cmd_simulate(const Args& args) {
  const auto parsed = load(args.file);
  const auto derived = derive(parsed, args);
  const sched::ParallelSearchResult result = search_schedule(derived.graph, args);
  if (!result.best.feasible) {
    std::printf("warning: no feasible schedule found; simulating anyway\n");
  }
  // Random admissible sporadic scripts over the whole run.
  std::map<ProcessId, SporadicScript> scripts;
  const Time horizon =
      Time() + derived.hyperperiod * Rational(std::max<std::int64_t>(args.frames - 1, 0));
  std::uint64_t salt = args.seed;
  for (const auto& [p, info] : derived.servers) {
    (void)info;
    const EventSpec& spec = parsed.net.process(p).event;
    scripts.emplace(
        p, SporadicScript::random(spec.burst, spec.period, horizon, ++salt));
  }
  runtime::RunOptions opts;
  opts.frames = args.frames;
  opts.overhead = args.overhead;
  const RunResult run = runtime::make_runtime(args.runtime)
                            ->run(parsed.net, derived, result.best.schedule, opts, {},
                                  scripts);
  std::printf("%s\n", run.trace.summary().c_str());
  GanttOptions gopts;
  std::printf("%s", render_gantt(run.trace, args.processors, gopts).c_str());
  return run.met_all_deadlines() ? 0 : 3;
}

int cmd_roundtrip(const Args& args) {
  const auto parsed = load(args.file);
  std::printf("%s", io::write_network(parsed.net, parsed.wcets).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.command == "check") {
      return cmd_check(args);
    }
    if (args.command == "taskgraph") {
      return cmd_taskgraph(args);
    }
    if (args.command == "schedule") {
      return cmd_schedule(args);
    }
    if (args.command == "simulate") {
      return cmd_simulate(args);
    }
    if (args.command == "roundtrip") {
      return cmd_roundtrip(args);
    }
    usage();
  } catch (const io::ParseError& e) {
    std::fprintf(stderr, "fppn_tool: parse error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fppn_tool: %s\n", e.what());
    return 1;
  }
}
