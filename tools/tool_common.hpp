// Shared plumbing of the fppn_tool subcommand modules: the parsed Args,
// the checked flag parsers (a non-integer or out-of-range value exits 2
// with an actionable message — never a raw stoi/stoll exception), usage
// printing, and the translation of Args into an engine::SolveRequest.
//
// Subcommands are thin by design: they parse flags into a SolveRequest,
// call engine::Engine::solve() (tools/cmd_*.cpp declare themselves in
// tools/commands.hpp) and format the SolveReport. All scheduling
// behavior — presets, cache attachment, sharding, determinism — lives in
// src/engine, shared with fppn_serve, the benches and the fuzz loop.
#pragma once

#include <cstdint>
#include <cstdio>
#include <limits>
#include <optional>
#include <string>

#include "engine/solve.hpp"
#include "sim/overhead.hpp"

namespace fppn {
namespace tool {

/// Every flag fppn_tool understands, across all subcommands.
struct Args {
  std::string command;
  std::string file;
  std::int64_t processors = 2;
  std::int64_t frames = 1;
  int unfold = 1;
  int jobs = 0;  ///< parallel-search workers; 0 = hardware concurrency
  int shards = 0;       ///< >0: split the schedule search across processes
  int shard_index = -1; ///< search-worker only: which shard this process owns
  int shard_retries = 1;  ///< failover attempts per failed shard worker
  std::uint64_t seed = 1;
  std::size_t cache_max_entries = 0;  ///< 0 = unbounded cache directory
  std::uint64_t cache_max_bytes = 0;  ///< 0 = no byte-size bound
  std::optional<Duration> uniform_wcet;
  std::optional<std::string> strategy;
  std::optional<std::string> cache_dir;
  std::optional<std::string> shard_dir;
  std::string runtime = "vm";
  // fuzz subcommand
  std::int64_t fuzz_seeds = 100;
  int shrink_steps = 0;  ///< 0 = the gen::FuzzConfig default
  std::string families;  ///< comma-separated family list; empty = all
  std::string repro_dir;
  std::optional<std::string> replay;
  bool inject_bug = false;
  bool processors_given = false;
  bool no_cache = false;
  bool no_incremental = false;  ///< escape hatch: from-scratch move scoring
  bool no_visited_set = false;  ///< escape hatch: no cross-worker score memo
  bool optimize = false;
  bool dot = false;
  bool gantt = false;
  OverheadModel overhead;
};

/// argv[0], kept for re-spawning shard workers when /proc/self/exe is
/// unavailable.
extern std::string g_argv0;

void print_usage(std::FILE* out);

[[noreturn]] void usage();

/// Checked integer parse for a numeric flag; see the header comment.
std::int64_t parse_int_flag(const char* flag, const std::string& value,
                            std::int64_t min_value,
                            std::int64_t max_value =
                                std::numeric_limits<std::int64_t>::max());

/// Checked unsigned parse (for --seed): rejects signs, non-digits and
/// values beyond uint64.
std::uint64_t parse_u64_flag(const char* flag, const std::string& value);

Args parse_args(int argc, char** argv);

/// The engine request this invocation describes: network file input,
/// derivation knobs, the consolidated SearchConfig, and — when sharding —
/// a process launcher that re-spawns this binary as
/// `fppn_tool search-worker` (one worker per shard, sharing --cache-dir).
[[nodiscard]] engine::SolveRequest solve_request(const Args& args);

/// The per-solve cache stats line ("cache '<dir>': N hit(s), ...") the
/// cached subcommands print before their result. No-op when no cache was
/// attached.
void print_cache_line(const engine::SolveReport& report);

/// The schedule-search result block shared by `schedule` (and its shard
/// accounting variant): result line, candidate/cache/worker counts, the
/// warm-start overlay line and the evaluation accounting. Byte-identical
/// to the pre-engine tool output.
void print_search_report(const engine::SolveReport& report);

}  // namespace tool
}  // namespace fppn
