#include <cstdio>

#include "commands.hpp"
#include "gen/fuzz.hpp"

namespace fppn {
namespace tool {

namespace {

void print_mismatch(const gen::FuzzMismatch& m, const char* repro_path) {
  std::fprintf(stderr,
               "fppn_tool: fuzz MISMATCH [%s] (processors=%lld incremental=%d "
               "visited=%d): %s\n",
               m.check.c_str(), static_cast<long long>(m.processors),
               m.toggles.incremental ? 1 : 0, m.toggles.visited_set ? 1 : 0,
               m.detail.c_str());
  if (repro_path != nullptr) {
    std::fprintf(stderr, "fppn_tool: repro written to %s\n", repro_path);
  }
}

}  // namespace

/// The differential fuzz loop (gen/fuzz.*). Exit codes: 0 all checks
/// agree, 1 hard error, 2 bad usage, 4 at least one mismatch detected.
int cmd_fuzz(const Args& args) {
  gen::FuzzConfig check;
  check.processors = args.processors_given ? args.processors : 0;
  check.inject_bug = args.inject_bug;
  if (args.shrink_steps > 0) {
    check.shrink_limit = args.shrink_steps;
  }

  if (args.replay.has_value()) {
    const gen::ReplayOutcome out = gen::replay_repro(*args.replay, check);
    if (out.verdict.mismatch.has_value()) {
      print_mismatch(*out.verdict.mismatch, nullptr);
      return 4;
    }
    if (!out.expected_check.empty()) {
      std::printf("replay clean: repro no longer triggers check '%s' (%zu jobs)\n",
                  out.expected_check.c_str(), out.verdict.jobs);
    } else {
      std::printf("replay clean: all checks agree (%zu jobs)\n", out.verdict.jobs);
    }
    return 0;
  }

  gen::FuzzRunConfig cfg;
  cfg.base_seed = args.seed;
  cfg.seeds = args.fuzz_seeds;
  cfg.repro_dir = args.repro_dir;
  cfg.check = check;
  if (!args.families.empty()) {
    std::string rest = args.families;
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      const std::string name = rest.substr(0, comma);
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      const auto family = gen::parse_family(name);
      if (!family.has_value()) {
        std::fprintf(stderr, "fppn_tool: unknown family '%s'\navailable families:",
                     name.c_str());
        for (gen::Family f : gen::all_families()) {
          std::fprintf(stderr, " %s", gen::to_string(f).c_str());
        }
        std::fprintf(stderr, "\n");
        return 2;
      }
      cfg.families.push_back(*family);
    }
  }

  const gen::FuzzStats stats = gen::run_fuzz(cfg);
  std::printf("fuzz: %zu scenarios (%zu jobs total), %zu TA-oracle checked, "
              "%zu policy-trace checked, %zu mismatches\n",
              stats.scenarios, stats.jobs, stats.ta_checked, stats.trace_checked,
              stats.mismatches.size());
  for (const auto& [family, count] : stats.per_family) {
    std::printf("  %-14s %zu\n", family.c_str(), count);
  }
  for (std::size_t i = 0; i < stats.mismatches.size(); ++i) {
    print_mismatch(stats.mismatches[i],
                   i < stats.repro_paths.size() ? stats.repro_paths[i].c_str()
                                                : nullptr);
  }
  return stats.mismatches.empty() ? 0 : 4;
}

}  // namespace tool
}  // namespace fppn
