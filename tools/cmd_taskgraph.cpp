#include <cstdio>

#include "commands.hpp"
#include "taskgraph/analysis.hpp"

namespace fppn {
namespace tool {

int cmd_taskgraph(const Args& args) {
  const auto parsed = engine::load_network(args.file);
  const auto derived = engine::derive_network(parsed, solve_request(args));
  if (args.dot) {
    std::printf("%s", derived.graph.to_dot().c_str());
    return 0;
  }
  std::printf("hyperperiod %s ms, %zu jobs, %zu edges (%zu removed by reduction)\n",
              derived.hyperperiod.to_string().c_str(), derived.graph.job_count(),
              derived.graph.edge_count(), derived.edges_removed);
  const LoadResult load_result = task_graph_load(derived.graph);
  std::printf("load %s (~%.4f) => >= %lld processor(s)\n",
              load_result.load.to_string().c_str(), load_result.load_value(),
              static_cast<long long>(load_result.min_processors()));
  std::printf("%s", derived.graph.to_table().c_str());
  return 0;
}

}  // namespace tool
}  // namespace fppn
